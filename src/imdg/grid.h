#ifndef JETSIM_IMDG_GRID_H_
#define JETSIM_IMDG_GRID_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/debug_check.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "imdg/partition.h"
#include "imdg/partition_table.h"

namespace jet::imdg {

/// Hash functor for byte-string keys.
struct BytesHash {
  size_t operator()(const Bytes& b) const { return HashBytes(b.data(), b.size()); }
};

/// Data of one partition of one IMap on one member.
using PartitionStore = std::unordered_map<Bytes, Bytes, BytesHash>;

/// Callback observing entry updates of one map (the "observable" facet of
/// IMDG's map, §4.2); invoked after the write is applied, outside the
/// partition lock.
using EntryListener = std::function<void(const Bytes& key, const Bytes& value)>;

/// Statistics counters exposed by the grid, mainly for tests and benches.
struct GridStats {
  int64_t puts = 0;
  int64_t gets = 0;
  int64_t removes = 0;
  int64_t replicated_bytes = 0;  // bytes written to backup replicas
  int64_t migrated_entries = 0;  // entries copied by rebalancing
};

/// Capacity usage over primary replicas — the `imdg.*` capacity surfaces
/// rendered by DiagnosticsDump. Entry counts are exact at scan time;
/// `bytes_approx` sums key + value payload bytes only (hash-table overhead
/// excluded), hence "approx".
struct GridUsage {
  int64_t entries = 0;
  int64_t bytes_approx = 0;
  /// Entries in the fullest partition (hot-partition detector).
  int64_t max_partition_entries = 0;
  /// max / mean entries per partition: 1.0 is perfectly even placement,
  /// large values mean key skew is concentrating state (0 when empty).
  double partition_skew = 0;
};

/// In-memory data grid: a partitioned, replicated key-value store modeling
/// Hazelcast IMDG (§2.4, §4.2). All replicas live in this process — each
/// member has its own physical store — so replication, backup promotion on
/// failure, and migration on join exercise the same data movements as the
/// real grid without a network.
///
/// Writes go to the primary replica and are synchronously applied to all
/// backup replicas ("sync backups"). On member failure the partition table
/// promotes backups (Fig. 6) and the grid re-creates lost replicas from the
/// new primaries; committed data survives any `backup_count` simultaneous
/// member failures.
///
/// Thread-safety: operations on different partitions proceed in parallel
/// (striped per-partition locks); operations on one partition serialize.
/// Entry-level operations take the layout lock *shared* plus their
/// partition's lock; membership and map-layout mutations
/// (AddMember/RemoveMember/Destroy) take the layout lock *exclusive*,
/// which excludes every concurrent entry operation (they may hold
/// PartitionStore pointers into structures these mutations destroy).
/// Per-member map-structure lookups are additionally serialized by a
/// member-local layout mutex (two shared holders in different partitions
/// may both lazily create nodes). Under JETSIM_DEBUG_CHECKS, StoreFor
/// asserts that its caller actually holds the partition lock.
///
/// Lock order (audited; the JET_EXCLUDES annotations on the entry points
/// keep re-entrant acquisitions from regressing it): layout_rw_ (shared
/// for entry ops, exclusive for layout mutations) → one partition lock →
/// MemberStore::layout_mutex. listener_mutex_ is a leaf lock never held
/// across any other acquisition, statistics are lock-free atomic tallies,
/// and listeners are invoked outside every lock.
class DataGrid {
 public:
  /// Creates a grid with the given replication factor. Members are added
  /// with `AddMember`.
  explicit DataGrid(int32_t backup_count = 1,
                    int32_t partition_count = kDefaultPartitionCount);

  DataGrid(const DataGrid&) = delete;
  DataGrid& operator=(const DataGrid&) = delete;

  /// Adds a member and rebalances partitions onto it (§4.3). Returns the
  /// number of migrated entries.
  Result<int64_t> AddMember(MemberId member) JET_EXCLUDES(layout_rw_);

  /// Simulates the hard failure of a member: its physical store is dropped,
  /// backups are promoted, and replacement backups are populated from the
  /// surviving primaries (§4.2, Fig. 6).
  Status RemoveMember(MemberId member) JET_EXCLUDES(layout_rw_);

  /// Stores `value` under `key` in map `map_name` (primary + backups).
  /// Listeners run after the write, outside every grid lock.
  Status Put(const std::string& map_name, const Bytes& key, const Bytes& value)
      JET_EXCLUDES(layout_rw_);

  /// Stores `value` under `key` in an explicitly chosen partition. Used by
  /// the snapshot store so a state entry lands in the partition of its
  /// *state key* (aligning snapshot locality with processing locality)
  /// rather than the hash of the composite storage key.
  Status PutInPartition(const std::string& map_name, PartitionId partition,
                        const Bytes& key, const Bytes& value)
      JET_EXCLUDES(layout_rw_);

  /// Returns the value under `key`, or std::nullopt if absent.
  Result<std::optional<Bytes>> Get(const std::string& map_name, const Bytes& key) const
      JET_EXCLUDES(layout_rw_);

  /// Removes `key`; returns true if it was present.
  Result<bool> Remove(const std::string& map_name, const Bytes& key)
      JET_EXCLUDES(layout_rw_);

  /// Registers a listener invoked on every Put to `map_name` (§4.2: the
  /// IMDG map is observable — the substrate of the §6 CDC/view-maintenance
  /// use cases). Returns a listener id for RemoveListener.
  int64_t AddEntryListener(const std::string& map_name, EntryListener listener);

  /// Unregisters a listener.
  void RemoveEntryListener(int64_t listener_id);

  /// Returns all entries of the map satisfying `predicate` (the "queryable"
  /// facet, scanning primary replicas).
  std::vector<std::pair<Bytes, Bytes>> EntriesWhere(
      const std::string& map_name,
      const std::function<bool(const Bytes& key, const Bytes& value)>& predicate) const;

  /// Total number of entries in the map (over primary replicas).
  int64_t Size(const std::string& map_name) const;

  /// Removes every entry of the map on all replicas.
  void Clear(const std::string& map_name) JET_EXCLUDES(layout_rw_);

  /// Drops the map entirely (all partitions, all replicas).
  void Destroy(const std::string& map_name) JET_EXCLUDES(layout_rw_);

  /// Copies all entries of `map_name` living in `partition` (read from the
  /// primary replica).
  std::vector<std::pair<Bytes, Bytes>> EntriesInPartition(const std::string& map_name,
                                                          PartitionId partition) const;

  /// Applies `fn` to every entry in `partition` of `map_name`.
  void ForEachInPartition(const std::string& map_name, PartitionId partition,
                          const std::function<void(const Bytes&, const Bytes&)>& fn) const;

  /// Partition that `key` belongs to.
  PartitionId PartitionOf(const Bytes& key) const {
    return PartitionForHash(HashBytes(key.data(), key.size()), table_.partition_count());
  }

  /// The partition table (primary/backup assignment).
  const PartitionTable& table() const { return table_; }

  /// Locked table reads for observers that race membership changes (e.g. a
  /// supervised cluster's control thread evicting members): table() itself
  /// is unsynchronized and only safe when no rebalance can be in flight.
  int64_t TableVersion() const;
  Status ValidateTable() const;

  /// Pre-sizes the per-partition hash stores of `map_name` on every
  /// replica for `expected_entries` across the whole map, so a bulk load
  /// (snapshot write, large-state job warm-up) pays no incremental rehash
  /// storms. An unordered_map rehash is O(partition entries) and lands on
  /// whichever Put crosses the load factor — at 1M+ entries those spikes
  /// dominate the put-latency tail (see bench_shufflebench's imdg_load
  /// scenario). Idempotent; reserving below the current size is a no-op.
  Status Reserve(const std::string& map_name, int64_t expected_entries)
      JET_EXCLUDES(layout_rw_);

  /// Scans primary replicas and reports capacity usage (all maps
  /// combined). Takes each partition lock once; intended for diagnostics
  /// cadence, not per-operation use.
  GridUsage Usage() const JET_EXCLUDES(layout_rw_);

  /// Counters; not synchronized with in-flight operations.
  GridStats stats() const;

  int32_t partition_count() const { return table_.partition_count(); }

  /// Verifies that every backup replica is byte-identical to its primary.
  /// Test helper; takes all partition locks one by one.
  Status CheckReplicaConsistency(const std::string& map_name) const;

 private:
  // All maps of one member: map name -> partition id -> entries. Only
  // partitions with a replica on the member have a (possibly empty) store.
  struct MemberStore {
    std::unordered_map<std::string, std::unordered_map<PartitionId, PartitionStore>>
        maps;
    // Serializes lookups/insertions in the two-level `maps` structure:
    // writers to *different* partitions hold different partition locks yet
    // may both lazily create nodes of this unordered_map. Node pointers
    // stay valid after release; erasure happens only under the exclusive
    // layout lock (see layout_rw_). Innermost lock of the grid's order:
    // taken after layout_rw_ and a partition lock, never before either.
    mutable jet::Mutex layout_mutex;
  };

  // Requires the partition lock. Returns nullptr if the member is gone.
  PartitionStore* StoreFor(MemberId member, const std::string& map_name,
                           PartitionId partition);
  const PartitionStore* StoreForConst(MemberId member, const std::string& map_name,
                                      PartitionId partition) const;

  // Copies partition data according to the migration plan.
  int64_t ApplyMigrations(const std::vector<Migration>& migrations);

  jet::Mutex& LockFor(PartitionId partition) const {
    return partition_locks_[static_cast<size_t>(partition)];
  }

  // Layout lock: shared by entry operations (alongside their partition
  // lock), exclusive for table_/members_/map-layout mutations. Always
  // acquired before any partition lock.
  mutable jet::SharedMutex layout_rw_;
  // table_ and members_ are written under exclusive layout_rw_ and read
  // under shared layout_rw_ + a partition lock; clang's analysis cannot
  // express "shared + striped partition lock", so only the map containers
  // are annotated and StoreFor's contract stays runtime-checked
  // (HoldTracker under JETSIM_DEBUG_CHECKS).
  PartitionTable table_;
  std::unordered_map<MemberId, std::unique_ptr<MemberStore>> members_;
  // Striped per-partition locks, always acquired after layout_rw_ (a
  // JET_ACQUIRED_AFTER annotation cannot name a lock inside a container,
  // so the order on this edge stays prose + JET_EXCLUDES on entry points).
  mutable std::vector<jet::Mutex> partition_locks_;
  // Debug-only (empty in release): tracks which thread holds each
  // partition lock so StoreFor can assert its locking contract.
  mutable std::vector<debug::HoldTracker> partition_hold_;
  // Statistics tallies. Relaxed atomic RMWs instead of a mutex: the old
  // global stats_mutex_ serialized every Put/Get/Remove across all
  // partitions — a measurable scalability ceiling the striped partition
  // locks were built to avoid. Counters are monotonic and only read by
  // stats(); no ordering is needed.
  mutable std::atomic<int64_t> stat_puts_{0};
  mutable std::atomic<int64_t> stat_gets_{0};
  mutable std::atomic<int64_t> stat_removes_{0};
  mutable std::atomic<int64_t> stat_replicated_bytes_{0};
  mutable std::atomic<int64_t> stat_migrated_entries_{0};

  mutable jet::Mutex listener_mutex_;
  int64_t next_listener_id_ JET_GUARDED_BY(listener_mutex_) = 1;
  // listener id -> (map name, callback)
  std::map<int64_t, std::pair<std::string, EntryListener>> listeners_
      JET_GUARDED_BY(listener_mutex_);
  // Fast-path guard for the per-Put listener scan: when no listener is
  // registered (the overwhelmingly common case — only CDC-style jobs
  // attach them), Put skips the listener_mutex_ acquisition and the
  // registry scan entirely.
  std::atomic<int64_t> listener_count_{0};
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_GRID_H_
