#ifndef JETSIM_IMDG_GRID_H_
#define JETSIM_IMDG_GRID_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/debug_check.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "imdg/ownership.h"
#include "imdg/partition.h"
#include "imdg/partition_table.h"

namespace jet::imdg {

class DataGrid;

/// Hash functor for byte-string keys.
struct BytesHash {
  size_t operator()(const Bytes& b) const { return HashBytes(b.data(), b.size()); }
};

/// Data of one partition of one IMap on one member.
using PartitionStore = std::unordered_map<Bytes, Bytes, BytesHash>;

/// Callback observing entry updates of one map (the "observable" facet of
/// IMDG's map, §4.2); invoked after the write is applied, outside the
/// partition lock.
using EntryListener = std::function<void(const Bytes& key, const Bytes& value)>;

/// Statistics counters exposed by the grid, mainly for tests and benches.
struct GridStats {
  int64_t puts = 0;
  int64_t gets = 0;
  int64_t removes = 0;
  int64_t replicated_bytes = 0;  // bytes written to backup replicas
  int64_t migrated_entries = 0;  // entries copied by rebalancing
  int64_t batched_moves = 0;     // whole-store migrations (moved, not copied)
};

/// Exclusive, lock-free access to one (map, partition) pair of the grid by
/// its registered single writer (ROADMAP item 3). The handle caches raw
/// PartitionStore pointers for the primary and backup replicas; every
/// operation is plain loads/stores on those stores — no `layout_rw_`
/// acquisition, no partition mutex — so a keyed-aggregation hot path pays
/// zero lock operations per event.
///
/// Safety protocol (epoch + in-op flag, Dekker-style):
///  - every operation publishes `in_op_ = true` (seq_cst), then validates
///    its cached layout epoch against the grid's (seq_cst load). On a
///    mismatch it clears the flag and re-resolves its pointers under the
///    grid's locks.
///  - every layout mutation (AddMember/RemoveMember/Destroy) bumps the
///    epoch (seq_cst) *while holding the exclusive layout lock*, then
///    spin-waits until every registered handle shows `in_op_ == false`.
/// In the seq_cst total order either the handle's epoch load precedes the
/// mutator's bump — then the mutator's quiesce scan observes `in_op_ ==
/// true` and waits out the operation — or it follows it, and the handle
/// retires to the locked slow path before touching any store. Either way
/// no owned operation ever overlaps a layout mutation.
///
/// Single-thread contract: only the owning tasklet's worker thread may
/// call operations (ThreadOwnershipGuard-enforced under
/// JETSIM_DEBUG_CHECKS). On a scheduler handoff call ReleaseThreadBinding()
/// from the old worker; the next operation re-binds to the adopting one.
///
/// While a handle is live, locked-path entry operations on its (map,
/// partition) pair are rejected with kFailedPrecondition and whole-grid
/// scans (Size/Usage/EntriesWhere/CheckReplicaConsistency/Clear/Reserve)
/// skip the pair — the owner is the only reader and writer.
class OwnedPartitionHandle {
 public:
  ~OwnedPartitionHandle();

  OwnedPartitionHandle(const OwnedPartitionHandle&) = delete;
  OwnedPartitionHandle& operator=(const OwnedPartitionHandle&) = delete;

  /// Stores `value` under `key` on the primary and every backup replica.
  Status Put(const Bytes& key, const Bytes& value);

  /// Returns the value under `key`, or nullopt.
  std::optional<Bytes> Get(const Bytes& key);

  /// Removes `key` from all replicas; true if it was present.
  bool Remove(const Bytes& key);

  /// In-place read-modify-write: applies `fn` to the stored value under
  /// `key` (inserting an empty value first if absent), then mirrors the
  /// result to the backups. Saves the Get copy of a fold-style update.
  Status Update(const Bytes& key, const std::function<void(Bytes*)>& fn);

  /// Entries in the primary replica of the pair.
  int64_t Size();

  /// Applies `fn` to every entry of the primary replica (owner-thread
  /// only; used to snapshot owned state).
  void ForEach(const std::function<void(const Bytes&, const Bytes&)>& fn);

  /// Unbinds the handle from its current worker thread (scheduler handoff,
  /// round boundary). The next operation binds the calling thread.
  void ReleaseThreadBinding() { guard_.Release(); }

  PartitionId partition() const { return partition_; }
  const std::string& map_name() const { return map_; }

 private:
  friend class DataGrid;

  OwnedPartitionHandle(DataGrid* grid, std::string map, PartitionId partition,
                       int64_t tasklet);

  /// Publishes in_op_ and validates the epoch; on return the cached
  /// pointers are safe to use until ExitOp().
  void EnterOp();
  void ExitOp() { in_op_.store(false, std::memory_order_release); }

  /// Re-resolves the replica store pointers under the grid's locks.
  /// Audited cooperative boundary: this is the owned path's *cold* path,
  /// entered only when the layout epoch changed (a membership event). The
  /// critical section is a bounded pointer re-resolution; it blocks only
  /// while a layout mutation is mid-flight, which is the quiesce protocol's
  /// required semantic, not an unbounded wait on the steady-state hot path.
  void Refresh() JET_COOPERATIVE;

  /// Folds the handle-local statistic tallies into the grid's counters.
  void FoldStats();

  DataGrid* grid_;
  std::string map_;
  PartitionId partition_;
  int64_t tasklet_;
  /// Layout epoch the cached pointers were resolved at. 0 forces a
  /// Refresh on the first operation (the grid's epoch starts at 1).
  uint64_t epoch_ = 0;
  PartitionStore* primary_ = nullptr;
  std::vector<PartitionStore*> backups_;
  /// True while an owned operation is touching the cached stores; the
  /// grid's layout mutators quiesce on it.
  std::atomic<bool> in_op_{false};
  /// Handle-local stats, folded into the grid on destruction — the owned
  /// hot path must not share cache lines with other writers.
  int64_t local_puts_ = 0;
  int64_t local_gets_ = 0;
  int64_t local_removes_ = 0;
  int64_t local_replicated_ = 0;
  debug::ThreadOwnershipGuard guard_;
};

/// Capacity usage over primary replicas — the `imdg.*` capacity surfaces
/// rendered by DiagnosticsDump. Entry counts are exact at scan time;
/// `bytes_approx` sums key + value payload bytes only (hash-table overhead
/// excluded), hence "approx".
struct GridUsage {
  int64_t entries = 0;
  int64_t bytes_approx = 0;
  /// Entries in the fullest partition (hot-partition detector).
  int64_t max_partition_entries = 0;
  /// max / mean entries per partition: 1.0 is perfectly even placement,
  /// large values mean key skew is concentrating state (0 when empty).
  double partition_skew = 0;
};

/// In-memory data grid: a partitioned, replicated key-value store modeling
/// Hazelcast IMDG (§2.4, §4.2). All replicas live in this process — each
/// member has its own physical store — so replication, backup promotion on
/// failure, and migration on join exercise the same data movements as the
/// real grid without a network.
///
/// Writes go to the primary replica and are synchronously applied to all
/// backup replicas ("sync backups"). On member failure the partition table
/// promotes backups (Fig. 6) and the grid re-creates lost replicas from the
/// new primaries; committed data survives any `backup_count` simultaneous
/// member failures.
///
/// Thread-safety: operations on different partitions proceed in parallel
/// (striped per-partition locks); operations on one partition serialize.
/// Entry-level operations take the layout lock *shared* plus their
/// partition's lock; membership and map-layout mutations
/// (AddMember/RemoveMember/Destroy) take the layout lock *exclusive*,
/// which excludes every concurrent entry operation (they may hold
/// PartitionStore pointers into structures these mutations destroy).
/// Per-member map-structure lookups are additionally serialized by a
/// member-local layout mutex (two shared holders in different partitions
/// may both lazily create nodes). Under JETSIM_DEBUG_CHECKS, StoreFor
/// asserts that its caller actually holds the partition lock.
///
/// Lock order (audited; the JET_EXCLUDES annotations on the entry points
/// keep re-entrant acquisitions from regressing it): layout_rw_ (shared
/// for entry ops, exclusive for layout mutations) → one partition lock →
/// MemberStore::layout_mutex → owned_mutex_ (innermost; guards the
/// owned-handle registry and is never held while acquiring any other
/// lock). listener_mutex_ is a leaf lock never held across any other
/// acquisition, statistics are lock-free atomic tallies, and listeners are
/// invoked outside every lock.
///
/// Owned access (single-writer mode): a partition claimed in ownership()
/// can be accessed through an OwnedPartitionHandle with zero lock
/// operations per entry op; layout mutations quiesce all live handles
/// (epoch bump + in-op spin under the exclusive layout lock) before
/// touching any store, and locked-path operations reject / scans skip a
/// pair covered by a live handle.
class DataGrid {
 public:
  /// Creates a grid with the given replication factor. Members are added
  /// with `AddMember`.
  explicit DataGrid(int32_t backup_count = 1,
                    int32_t partition_count = kDefaultPartitionCount);

  DataGrid(const DataGrid&) = delete;
  DataGrid& operator=(const DataGrid&) = delete;

  /// Adds a member and rebalances partitions onto it (§4.3). Returns the
  /// number of migrated entries.
  Result<int64_t> AddMember(MemberId member) JET_EXCLUDES(layout_rw_);

  /// Simulates the hard failure of a member: its physical store is dropped,
  /// backups are promoted, and replacement backups are populated from the
  /// surviving primaries (§4.2, Fig. 6).
  Status RemoveMember(MemberId member) JET_EXCLUDES(layout_rw_);

  /// Stores `value` under `key` in map `map_name` (primary + backups).
  /// Listeners run after the write, outside every grid lock.
  Status Put(const std::string& map_name, const Bytes& key, const Bytes& value)
      JET_EXCLUDES(layout_rw_);

  /// Stores `value` under `key` in an explicitly chosen partition. Used by
  /// the snapshot store so a state entry lands in the partition of its
  /// *state key* (aligning snapshot locality with processing locality)
  /// rather than the hash of the composite storage key.
  Status PutInPartition(const std::string& map_name, PartitionId partition,
                        const Bytes& key, const Bytes& value)
      JET_EXCLUDES(layout_rw_);

  /// Returns the value under `key`, or std::nullopt if absent.
  Result<std::optional<Bytes>> Get(const std::string& map_name, const Bytes& key) const
      JET_EXCLUDES(layout_rw_);

  /// Removes `key`; returns true if it was present.
  Result<bool> Remove(const std::string& map_name, const Bytes& key)
      JET_EXCLUDES(layout_rw_);

  /// Registers a listener invoked on every Put to `map_name` (§4.2: the
  /// IMDG map is observable — the substrate of the §6 CDC/view-maintenance
  /// use cases). Returns a listener id for RemoveListener.
  int64_t AddEntryListener(const std::string& map_name, EntryListener listener);

  /// Unregisters a listener.
  void RemoveEntryListener(int64_t listener_id);

  /// Returns all entries of the map satisfying `predicate` (the "queryable"
  /// facet, scanning primary replicas).
  std::vector<std::pair<Bytes, Bytes>> EntriesWhere(
      const std::string& map_name,
      const std::function<bool(const Bytes& key, const Bytes& value)>& predicate) const;

  /// Total number of entries in the map (over primary replicas).
  int64_t Size(const std::string& map_name) const;

  /// Removes every entry of the map on all replicas.
  void Clear(const std::string& map_name) JET_EXCLUDES(layout_rw_);

  /// Drops the map entirely (all partitions, all replicas).
  void Destroy(const std::string& map_name) JET_EXCLUDES(layout_rw_);

  /// Copies all entries of `map_name` living in `partition` (read from the
  /// primary replica).
  std::vector<std::pair<Bytes, Bytes>> EntriesInPartition(const std::string& map_name,
                                                          PartitionId partition) const;

  /// Applies `fn` to every entry in `partition` of `map_name`.
  void ForEachInPartition(const std::string& map_name, PartitionId partition,
                          const std::function<void(const Bytes&, const Bytes&)>& fn) const;

  /// Partition that `key` belongs to.
  PartitionId PartitionOf(const Bytes& key) const {
    return PartitionForHash(HashBytes(key.data(), key.size()), table_.partition_count());
  }

  /// The partition table (primary/backup assignment).
  const PartitionTable& table() const { return table_; }

  /// Locked table reads for observers that race membership changes (e.g. a
  /// supervised cluster's control thread evicting members): table() itself
  /// is unsynchronized and only safe when no rebalance can be in flight.
  int64_t TableVersion() const;
  Status ValidateTable() const;

  /// Pre-sizes the per-partition hash stores of `map_name` on every
  /// replica for `expected_entries` across the whole map, so a bulk load
  /// (snapshot write, large-state job warm-up) pays no incremental rehash
  /// storms. An unordered_map rehash is O(partition entries) and lands on
  /// whichever Put crosses the load factor — at 1M+ entries those spikes
  /// dominate the put-latency tail (see bench_shufflebench's imdg_load
  /// scenario). Idempotent; reserving below the current size is a no-op.
  Status Reserve(const std::string& map_name, int64_t expected_entries)
      JET_EXCLUDES(layout_rw_);

  /// Scans primary replicas and reports capacity usage (all maps
  /// combined). Takes each partition lock once; intended for diagnostics
  /// cadence, not per-operation use.
  GridUsage Usage() const JET_EXCLUDES(layout_rw_);

  /// Counters; not synchronized with in-flight operations.
  GridStats stats() const;

  int32_t partition_count() const { return table_.partition_count(); }

  /// Verifies that every backup replica is byte-identical to its primary.
  /// Test helper; takes all partition locks one by one.
  Status CheckReplicaConsistency(const std::string& map_name) const;

  /// Single-writer ownership of this grid's partitions. Claim a partition
  /// here (scheduler/tasklet id), then open lock-free access with
  /// AcquireOwnedPartition. Exported as `grid.owned_partitions`.
  PartitionOwnershipTable& ownership() { return ownership_; }
  const PartitionOwnershipTable& ownership() const { return ownership_; }

  /// Opens owned (lock-free) access to one (map, partition) pair.
  /// `tasklet` must hold the partition's claim in ownership(); at most one
  /// live handle may exist per pair. The handle must be released (or the
  /// grid must outlive it) before the claim is released.
  Result<std::unique_ptr<OwnedPartitionHandle>> AcquireOwnedPartition(
      const std::string& map_name, PartitionId partition, int64_t tasklet)
      JET_EXCLUDES(layout_rw_);

  /// Number of live owned-partition handles (tests/diagnostics).
  int64_t owned_handles() const {
    return owned_active_.load(std::memory_order_acquire);
  }

 private:
  friend class OwnedPartitionHandle;
  // All maps of one member: map name -> partition id -> entries. Only
  // partitions with a replica on the member have a (possibly empty) store.
  struct MemberStore {
    std::unordered_map<std::string, std::unordered_map<PartitionId, PartitionStore>>
        maps;
    // Serializes lookups/insertions in the two-level `maps` structure:
    // writers to *different* partitions hold different partition locks yet
    // may both lazily create nodes of this unordered_map. Node pointers
    // stay valid after release; erasure happens only under the exclusive
    // layout lock (see layout_rw_). Innermost lock of the grid's order:
    // taken after layout_rw_ and a partition lock, never before either.
    mutable jet::Mutex layout_mutex;
  };

  // Requires the partition lock. Returns nullptr if the member is gone.
  PartitionStore* StoreFor(MemberId member, const std::string& map_name,
                           PartitionId partition);
  const PartitionStore* StoreForConst(MemberId member, const std::string& map_name,
                                      PartitionId partition) const;

  // Moves partition data according to the migration plan. Runs under the
  // exclusive layout lock (no entry operation or owned-handle operation can
  // be in flight), so stores are handed over in whole batches — moved when
  // the source relinquishes the replica, bulk-copied otherwise — instead of
  // entry-by-entry under the partition lock.
  int64_t ApplyMigrations(const std::vector<Migration>& migrations);

  // Requires the exclusive layout lock. Bumps layout_epoch_ and spin-waits
  // until no registered owned handle has an operation in flight; after it
  // returns the caller may invalidate any store the handles cache.
  void BumpLayoutEpochAndQuiesce();

  // True when a live owned handle covers (map_name, partition). Fast path:
  // a relaxed owned_active_ == 0 check, no lock.
  bool IsOwnedPair(const std::string& map_name, PartitionId partition) const;

  jet::Mutex& LockFor(PartitionId partition) const {
    return partition_locks_[static_cast<size_t>(partition)];
  }

  // Layout lock: shared by entry operations (alongside their partition
  // lock), exclusive for table_/members_/map-layout mutations. Always
  // acquired before any partition lock.
  mutable jet::SharedMutex layout_rw_;
  // table_ and members_ are written under exclusive layout_rw_ and read
  // under shared layout_rw_ + a partition lock; clang's analysis cannot
  // express "shared + striped partition lock", so only the map containers
  // are annotated and StoreFor's contract stays runtime-checked
  // (HoldTracker under JETSIM_DEBUG_CHECKS).
  PartitionTable table_;
  std::unordered_map<MemberId, std::unique_ptr<MemberStore>> members_;
  // Striped per-partition locks, always acquired after layout_rw_ (a
  // JET_ACQUIRED_AFTER annotation cannot name a lock inside a container,
  // so the order on this edge stays prose + JET_EXCLUDES on entry points).
  mutable std::vector<jet::Mutex> partition_locks_;
  // Debug-only (empty in release): tracks which thread holds each
  // partition lock so StoreFor can assert its locking contract.
  mutable std::vector<debug::HoldTracker> partition_hold_;
  // Statistics tallies. Relaxed atomic RMWs instead of a mutex: the old
  // global stats_mutex_ serialized every Put/Get/Remove across all
  // partitions — a measurable scalability ceiling the striped partition
  // locks were built to avoid. Counters are monotonic and only read by
  // stats(); no ordering is needed.
  mutable std::atomic<int64_t> stat_puts_{0};
  mutable std::atomic<int64_t> stat_gets_{0};
  mutable std::atomic<int64_t> stat_removes_{0};
  mutable std::atomic<int64_t> stat_replicated_bytes_{0};
  mutable std::atomic<int64_t> stat_migrated_entries_{0};
  mutable std::atomic<int64_t> stat_batched_moves_{0};

  mutable jet::Mutex listener_mutex_;
  int64_t next_listener_id_ JET_GUARDED_BY(listener_mutex_) = 1;
  // listener id -> (map name, callback)
  std::map<int64_t, std::pair<std::string, EntryListener>> listeners_
      JET_GUARDED_BY(listener_mutex_);
  // Fast-path guard for the per-Put listener scan: when no listener is
  // registered (the overwhelmingly common case — only CDC-style jobs
  // attach them), Put skips the listener_mutex_ acquisition and the
  // registry scan entirely.
  std::atomic<int64_t> listener_count_{0};

  // --- single-writer owned access (see OwnedPartitionHandle) ---
  // Who owns which partition; consulted by AcquireOwnedPartition and the
  // scheduler's ownership migration, never by the owned hot path.
  PartitionOwnershipTable ownership_;
  // Bumped (seq_cst) by every layout mutation while layout_rw_ is held
  // exclusively; owned handles validate their cached pointers against it.
  std::atomic<uint64_t> layout_epoch_{1};
  // Registry of live handles, for the quiesce scan and the owned-pair
  // checks. owned_mutex_ is the innermost lock of the grid's order: taken
  // after layout_rw_ / a partition lock / a member layout_mutex, and never
  // held while acquiring any other lock.
  mutable jet::Mutex owned_mutex_;
  std::vector<OwnedPartitionHandle*> owned_handles_registry_
      JET_GUARDED_BY(owned_mutex_);
  // Live-handle count; lets every locked-path owned-pair check and scan
  // skip the owned_mutex_ acquisition while no owned access exists.
  mutable std::atomic<int64_t> owned_active_{0};
};

}  // namespace jet::imdg

#endif  // JETSIM_IMDG_GRID_H_
