#include "imdg/grid.h"

#include <algorithm>

namespace jet::imdg {

DataGrid::DataGrid(int32_t backup_count, int32_t partition_count)
    : table_(partition_count, backup_count),
      partition_locks_(static_cast<size_t>(partition_count)),
      partition_hold_(static_cast<size_t>(partition_count)) {}

Result<int64_t> DataGrid::AddMember(MemberId member) {
  // Exclusive layout lock: entry operations read table_ and members_ under
  // the shared lock, so every mutation below is invisible to them until
  // this function returns.
  jet::WriterLock layout(layout_rw_);
  if (members_.count(member) != 0) {
    return Status(StatusCode::kAlreadyExists, "member already in grid");
  }
  members_[member] = std::make_unique<MemberStore>();
  std::vector<Migration> migrations;
  if (table_.members().empty()) {
    JET_RETURN_IF_ERROR(table_.Assign({member}));
  } else if (table_.members().size() == 1) {
    // Second member: re-run assignment so it picks up backup replicas too,
    // then copy everything it now owns.
    auto members = table_.members();
    members.push_back(member);
    JET_RETURN_IF_ERROR(table_.Assign(members));
    // Synthesize migrations: everything assigned to the new member copies
    // from the old single member.
    MemberId old = members[0];
    for (PartitionId p : table_.ReplicasOf(member)) {
      int32_t idx = 0;
      while (table_.ReplicaFor(p, idx) != member) ++idx;
      migrations.push_back(Migration{p, idx, old, member});
    }
  } else {
    migrations = table_.AddMember(member);
  }
  int64_t migrated = ApplyMigrations(migrations);
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_migrated_entries_.fetch_add(migrated, std::memory_order_relaxed);
  return migrated;
}

Status DataGrid::RemoveMember(MemberId member) {
  // Hard failure: the member's data is gone. Exclusive layout lock: entry
  // operations may hold PartitionStore pointers into this member.
  jet::WriterLock layout(layout_rw_);
  auto it = members_.find(member);
  if (it == members_.end()) return NotFoundError("member not in grid");
  members_.erase(it);
  auto migrations = table_.RemoveMember(member);
  int64_t migrated = ApplyMigrations(migrations);
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_migrated_entries_.fetch_add(migrated, std::memory_order_relaxed);
  return Status::OK();
}

int64_t DataGrid::TableVersion() const {
  jet::ReaderLock layout(layout_rw_);
  return table_.version();
}

Status DataGrid::ValidateTable() const {
  jet::ReaderLock layout(layout_rw_);
  return table_.Validate();
}

int64_t DataGrid::ApplyMigrations(const std::vector<Migration>& migrations) {
  int64_t migrated = 0;
  for (const Migration& m : migrations) {
    auto src_it = members_.find(m.source);
    auto dst_it = members_.find(m.destination);
    if (src_it == members_.end() || dst_it == members_.end()) continue;
    jet::MutexLock lock(LockFor(m.partition));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(m.partition)]);
    // Copy out under the source's layout mutex, then insert under the
    // destination's; sequential (never nested) acquisition stays
    // deadlock-free even when a migration maps a member onto itself.
    std::vector<std::pair<std::string, PartitionStore>> copies;
    {
      jet::MutexLock src_layout(src_it->second->layout_mutex);
      for (auto& [map_name, partitions] : src_it->second->maps) {
        auto part_it = partitions.find(m.partition);
        if (part_it == partitions.end()) continue;
        copies.emplace_back(map_name, part_it->second);
        migrated += static_cast<int64_t>(part_it->second.size());
      }
    }
    jet::MutexLock dst_layout(dst_it->second->layout_mutex);
    for (auto& [map_name, store] : copies) {
      dst_it->second->maps[map_name][m.partition] = std::move(store);
    }
  }
  return migrated;
}

PartitionStore* DataGrid::StoreFor(MemberId member, const std::string& map_name,
                                   PartitionId partition) {
  JET_DCHECK(partition >= 0 && partition < table_.partition_count());
  JET_DCHECK(partition_hold_[static_cast<size_t>(partition)].HeldByCurrentThread() &&
             "StoreFor requires the partition lock");
  auto it = members_.find(member);
  if (it == members_.end()) return nullptr;
  // The returned pointer stays valid after the layout mutex is released:
  // unordered_map nodes are stable, and erasure requires all partition
  // locks while the caller keeps holding this partition's.
  jet::MutexLock layout(it->second->layout_mutex);
  return &it->second->maps[map_name][partition];
}

const PartitionStore* DataGrid::StoreForConst(MemberId member,
                                              const std::string& map_name,
                                              PartitionId partition) const {
  JET_DCHECK(partition >= 0 && partition < table_.partition_count());
  JET_DCHECK(partition_hold_[static_cast<size_t>(partition)].HeldByCurrentThread() &&
             "StoreForConst requires the partition lock");
  auto it = members_.find(member);
  if (it == members_.end()) return nullptr;
  jet::MutexLock layout(it->second->layout_mutex);
  auto map_it = it->second->maps.find(map_name);
  if (map_it == it->second->maps.end()) return nullptr;
  auto part_it = map_it->second.find(partition);
  if (part_it == map_it->second.end()) return nullptr;
  return &part_it->second;
}

Status DataGrid::Put(const std::string& map_name, const Bytes& key, const Bytes& value) {
  return PutInPartition(map_name, PartitionOf(key), key, value);
}

int64_t DataGrid::AddEntryListener(const std::string& map_name, EntryListener listener) {
  jet::MutexLock lock(listener_mutex_);
  int64_t id = next_listener_id_++;
  listeners_[id] = {map_name, std::move(listener)};
  // Release-publish after the map insert so a Put seeing count > 0 also
  // sees the listener under listener_mutex_.
  listener_count_.store(static_cast<int64_t>(listeners_.size()),
                        std::memory_order_release);
  return id;
}

void DataGrid::RemoveEntryListener(int64_t listener_id) {
  jet::MutexLock lock(listener_mutex_);
  listeners_.erase(listener_id);
  listener_count_.store(static_cast<int64_t>(listeners_.size()),
                        std::memory_order_release);
}

std::vector<std::pair<Bytes, Bytes>> DataGrid::EntriesWhere(
    const std::string& map_name,
    const std::function<bool(const Bytes&, const Bytes&)>& predicate) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    ForEachInPartition(map_name, p, [&](const Bytes& k, const Bytes& v) {
      if (predicate(k, v)) out.emplace_back(k, v);
    });
  }
  return out;
}

Status DataGrid::PutInPartition(const std::string& map_name, PartitionId partition,
                                const Bytes& key, const Bytes& value) {
  if (partition < 0 || partition >= table_.partition_count()) {
    return InvalidArgumentError("partition out of range");
  }
  {
    jet::ReaderLock layout(layout_rw_);
    jet::MutexLock lock(LockFor(partition));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
    MemberId primary = table_.PrimaryFor(partition);
    if (primary == kInvalidMember) return UnavailableError("no members in grid");
    PartitionStore* store = StoreFor(primary, map_name, partition);
    if (store == nullptr) return InternalError("primary member store missing");
    (*store)[key] = value;
    // Synchronous backups (§4.2): apply to every backup replica before
    // acknowledging.
    int64_t replicated = 0;
    for (int32_t i = 1; i <= table_.backup_count(); ++i) {
      MemberId backup = table_.ReplicaFor(partition, i);
      if (backup == kInvalidMember) continue;
      PartitionStore* backup_store = StoreFor(backup, map_name, partition);
      if (backup_store != nullptr) {
        (*backup_store)[key] = value;
        replicated += static_cast<int64_t>(key.size() + value.size());
      }
    }
    // jet-verify: allow(single-writer) — monotonic stats counters (RMW)
    stat_puts_.fetch_add(1, std::memory_order_relaxed);
    stat_replicated_bytes_.fetch_add(replicated, std::memory_order_relaxed);
  }
  // Notify listeners outside every grid lock (per the EntryListener
  // contract) so a listener may re-enter the grid. The acquire load skips
  // the lock + registry scan entirely when no listener exists — the
  // common case, which at bulk-load rates would otherwise put a global
  // mutex on every Put.
  if (listener_count_.load(std::memory_order_acquire) > 0) {
    std::vector<EntryListener> to_notify;
    {
      jet::MutexLock l(listener_mutex_);
      for (const auto& [id, entry] : listeners_) {
        if (entry.first == map_name) to_notify.push_back(entry.second);
      }
    }
    for (const auto& fn : to_notify) fn(key, value);
  }
  return Status::OK();
}

Result<std::optional<Bytes>> DataGrid::Get(const std::string& map_name,
                                           const Bytes& key) const {
  PartitionId partition = PartitionOf(key);
  jet::ReaderLock layout(layout_rw_);
  jet::MutexLock lock(LockFor(partition));
  debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
  MemberId primary = table_.PrimaryFor(partition);
  if (primary == kInvalidMember) return UnavailableError("no members in grid");
  const PartitionStore* store = StoreForConst(primary, map_name, partition);
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_gets_.fetch_add(1, std::memory_order_relaxed);
  if (store == nullptr) return std::optional<Bytes>();
  auto it = store->find(key);
  if (it == store->end()) return std::optional<Bytes>();
  return std::optional<Bytes>(it->second);
}

Result<bool> DataGrid::Remove(const std::string& map_name, const Bytes& key) {
  PartitionId partition = PartitionOf(key);
  jet::ReaderLock layout(layout_rw_);
  jet::MutexLock lock(LockFor(partition));
  debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
  MemberId primary = table_.PrimaryFor(partition);
  if (primary == kInvalidMember) return UnavailableError("no members in grid");
  PartitionStore* store = StoreFor(primary, map_name, partition);
  bool removed = store != nullptr && store->erase(key) > 0;
  for (int32_t i = 1; i <= table_.backup_count(); ++i) {
    MemberId backup = table_.ReplicaFor(partition, i);
    if (backup == kInvalidMember) continue;
    PartitionStore* backup_store = StoreFor(backup, map_name, partition);
    if (backup_store != nullptr) backup_store->erase(key);
  }
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_removes_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

int64_t DataGrid::Size(const std::string& map_name) const {
  int64_t total = 0;
  jet::ReaderLock layout(layout_rw_);
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    MemberId primary = table_.PrimaryFor(p);
    if (primary == kInvalidMember) continue;
    const PartitionStore* store = StoreForConst(primary, map_name, p);
    if (store != nullptr) total += static_cast<int64_t>(store->size());
  }
  return total;
}

void DataGrid::Clear(const std::string& map_name) {
  jet::ReaderLock layout(layout_rw_);
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    for (auto& [id, member] : members_) {
      jet::MutexLock layout(member->layout_mutex);
      auto map_it = member->maps.find(map_name);
      if (map_it == member->maps.end()) continue;
      auto part_it = map_it->second.find(p);
      if (part_it != map_it->second.end()) part_it->second.clear();
    }
  }
}

void DataGrid::Destroy(const std::string& map_name) {
  // Erasing whole maps invalidates PartitionStore pointers held by entry
  // operations, so exclude them all.
  jet::WriterLock layout(layout_rw_);
  for (auto& [id, member] : members_) member->maps.erase(map_name);
}

std::vector<std::pair<Bytes, Bytes>> DataGrid::EntriesInPartition(
    const std::string& map_name, PartitionId partition) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  ForEachInPartition(map_name, partition,
                     [&out](const Bytes& k, const Bytes& v) { out.emplace_back(k, v); });
  return out;
}

void DataGrid::ForEachInPartition(
    const std::string& map_name, PartitionId partition,
    const std::function<void(const Bytes&, const Bytes&)>& fn) const {
  jet::ReaderLock layout(layout_rw_);
  jet::MutexLock lock(LockFor(partition));
  debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
  MemberId primary = table_.PrimaryFor(partition);
  if (primary == kInvalidMember) return;
  const PartitionStore* store = StoreForConst(primary, map_name, partition);
  if (store == nullptr) return;
  for (const auto& [k, v] : *store) fn(k, v);
}

GridStats DataGrid::stats() const {
  GridStats s;
  s.puts = stat_puts_.load(std::memory_order_relaxed);
  s.gets = stat_gets_.load(std::memory_order_relaxed);
  s.removes = stat_removes_.load(std::memory_order_relaxed);
  s.replicated_bytes = stat_replicated_bytes_.load(std::memory_order_relaxed);
  s.migrated_entries = stat_migrated_entries_.load(std::memory_order_relaxed);
  return s;
}

Status DataGrid::Reserve(const std::string& map_name, int64_t expected_entries) {
  if (expected_entries < 0) return InvalidArgumentError("negative reservation");
  jet::ReaderLock layout(layout_rw_);
  const int32_t partitions = table_.partition_count();
  if (partitions <= 0 || table_.members().empty()) {
    return UnavailableError("no members in grid");
  }
  // Even key placement puts n/p entries in each partition; reserve ~25%
  // above that so moderate skew still avoids the final rehash.
  const auto per_partition = static_cast<size_t>(
      (expected_entries + partitions - 1) / partitions + expected_entries / (partitions * 4));
  for (PartitionId p = 0; p < partitions; ++p) {
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    for (int32_t i = 0; i <= table_.backup_count(); ++i) {
      MemberId replica = table_.ReplicaFor(p, i);
      if (replica == kInvalidMember) continue;
      PartitionStore* store = StoreFor(replica, map_name, p);
      if (store != nullptr) store->reserve(per_partition);
    }
  }
  return Status::OK();
}

GridUsage DataGrid::Usage() const {
  GridUsage usage;
  jet::ReaderLock layout(layout_rw_);
  const int32_t partitions = table_.partition_count();
  for (PartitionId p = 0; p < partitions; ++p) {
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    MemberId primary = table_.PrimaryFor(p);
    if (primary == kInvalidMember) continue;
    auto member_it = members_.find(primary);
    if (member_it == members_.end()) continue;
    int64_t partition_entries = 0;
    jet::MutexLock member_layout(member_it->second->layout_mutex);
    for (const auto& [map_name, map_partitions] : member_it->second->maps) {
      auto part_it = map_partitions.find(p);
      if (part_it == map_partitions.end()) continue;
      partition_entries += static_cast<int64_t>(part_it->second.size());
      for (const auto& [k, v] : part_it->second) {
        usage.bytes_approx += static_cast<int64_t>(k.size() + v.size());
      }
    }
    usage.entries += partition_entries;
    usage.max_partition_entries = std::max(usage.max_partition_entries, partition_entries);
  }
  if (usage.entries > 0 && partitions > 0) {
    const double mean =
        static_cast<double>(usage.entries) / static_cast<double>(partitions);
    usage.partition_skew = static_cast<double>(usage.max_partition_entries) / mean;
  }
  return usage;
}

Status DataGrid::CheckReplicaConsistency(const std::string& map_name) const {
  jet::ReaderLock layout(layout_rw_);
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    MemberId primary = table_.PrimaryFor(p);
    if (primary == kInvalidMember) continue;
    const PartitionStore* primary_store = StoreForConst(primary, map_name, p);
    for (int32_t i = 1; i <= table_.backup_count(); ++i) {
      MemberId backup = table_.ReplicaFor(p, i);
      if (backup == kInvalidMember) continue;
      const PartitionStore* backup_store = StoreForConst(backup, map_name, p);
      size_t primary_size = primary_store == nullptr ? 0 : primary_store->size();
      size_t backup_size = backup_store == nullptr ? 0 : backup_store->size();
      if (primary_size != backup_size) {
        return InternalError("replica size mismatch in partition " + std::to_string(p));
      }
      if (primary_store == nullptr) continue;
      for (const auto& [k, v] : *primary_store) {
        auto it = backup_store->find(k);
        if (it == backup_store->end() || it->second != v) {
          return InternalError("replica entry mismatch in partition " +
                               std::to_string(p));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace jet::imdg
