#include "imdg/grid.h"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

namespace jet::imdg {

DataGrid::DataGrid(int32_t backup_count, int32_t partition_count)
    : table_(partition_count, backup_count),
      partition_locks_(static_cast<size_t>(partition_count)),
      partition_hold_(static_cast<size_t>(partition_count)),
      ownership_(partition_count) {}

Result<int64_t> DataGrid::AddMember(MemberId member) {
  // Exclusive layout lock: entry operations read table_ and members_ under
  // the shared lock, so every mutation below is invisible to them until
  // this function returns. Owned handles bypass the shared lock, so they
  // are quiesced explicitly before any store is touched.
  jet::WriterLock layout(layout_rw_);
  BumpLayoutEpochAndQuiesce();
  if (members_.count(member) != 0) {
    return Status(StatusCode::kAlreadyExists, "member already in grid");
  }
  members_[member] = std::make_unique<MemberStore>();
  std::vector<Migration> migrations;
  if (table_.members().empty()) {
    JET_RETURN_IF_ERROR(table_.Assign({member}));
  } else if (table_.members().size() == 1) {
    // Second member: re-run assignment so it picks up backup replicas too,
    // then copy everything it now owns.
    auto members = table_.members();
    members.push_back(member);
    JET_RETURN_IF_ERROR(table_.Assign(members));
    // Synthesize migrations: everything assigned to the new member copies
    // from the old single member.
    MemberId old = members[0];
    for (PartitionId p : table_.ReplicasOf(member)) {
      int32_t idx = 0;
      while (table_.ReplicaFor(p, idx) != member) ++idx;
      migrations.push_back(Migration{p, idx, old, member});
    }
  } else {
    migrations = table_.AddMember(member);
  }
  int64_t migrated = ApplyMigrations(migrations);
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_migrated_entries_.fetch_add(migrated, std::memory_order_relaxed);
  return migrated;
}

Status DataGrid::RemoveMember(MemberId member) {
  // Hard failure: the member's data is gone. Exclusive layout lock: entry
  // operations may hold PartitionStore pointers into this member, and so
  // do owned handles — quiesce them before the erase below.
  jet::WriterLock layout(layout_rw_);
  BumpLayoutEpochAndQuiesce();
  auto it = members_.find(member);
  if (it == members_.end()) return NotFoundError("member not in grid");
  members_.erase(it);
  auto migrations = table_.RemoveMember(member);
  int64_t migrated = ApplyMigrations(migrations);
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_migrated_entries_.fetch_add(migrated, std::memory_order_relaxed);
  return Status::OK();
}

int64_t DataGrid::TableVersion() const {
  jet::ReaderLock layout(layout_rw_);
  return table_.version();
}

Status DataGrid::ValidateTable() const {
  jet::ReaderLock layout(layout_rw_);
  return table_.Validate();
}

void DataGrid::BumpLayoutEpochAndQuiesce() {
  // Publish the new epoch first (seq_cst): any owned operation that starts
  // after this point validates against it, misses, and retires to the
  // locked slow path — where it blocks on layout_rw_, which the caller
  // holds exclusively.
  layout_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (owned_active_.load(std::memory_order_acquire) == 0) return;
  jet::MutexLock lock(owned_mutex_);
  for (OwnedPartitionHandle* handle : owned_handles_registry_) {
    // An operation that published in_op_ before the epoch bump is still
    // running on pre-mutation pointers; wait it out. Owned operations
    // never block or take locks, so the wait is bounded by one entry op.
    while (handle->in_op_.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
  }
}

bool DataGrid::IsOwnedPair(const std::string& map_name, PartitionId partition) const {
  if (owned_active_.load(std::memory_order_acquire) == 0) return false;
  jet::MutexLock lock(owned_mutex_);
  for (const OwnedPartitionHandle* handle : owned_handles_registry_) {
    if (handle->partition_ == partition && handle->map_ == map_name) return true;
  }
  return false;
}

int64_t DataGrid::ApplyMigrations(const std::vector<Migration>& migrations) {
  // Callers hold layout_rw_ exclusively and have quiesced owned handles:
  // no entry operation, scan, or owned access can observe intermediate
  // state, so the stores are handed over in whole batches without per-
  // partition locks — a 1M-entry partition moves as one node splice
  // instead of 1M locked inserts.
  int64_t migrated = 0;
  // A store may only be *moved* out of its source when no later migration
  // still copies from the same (source, partition).
  std::map<std::pair<MemberId, PartitionId>, int32_t> pending_reads;
  for (const Migration& m : migrations) ++pending_reads[{m.source, m.partition}];
  for (const Migration& m : migrations) {
    auto src_it = members_.find(m.source);
    auto dst_it = members_.find(m.destination);
    --pending_reads[{m.source, m.partition}];
    if (src_it == members_.end() || dst_it == members_.end()) continue;
    bool source_keeps_replica = false;
    for (int32_t i = 0; i <= table_.backup_count(); ++i) {
      if (table_.ReplicaFor(m.partition, i) == m.source) {
        source_keeps_replica = true;
        break;
      }
    }
    if (m.source == m.destination) {
      // Maps a member onto itself: the data is already in place; only the
      // accounting applies.
      for (auto& [map_name, partitions] : src_it->second->maps) {
        auto part_it = partitions.find(m.partition);
        if (part_it != partitions.end()) {
          migrated += static_cast<int64_t>(part_it->second.size());
        }
      }
      continue;
    }
    const bool move_store =
        !source_keeps_replica && pending_reads[{m.source, m.partition}] == 0;
    for (auto& [map_name, partitions] : src_it->second->maps) {
      auto part_it = partitions.find(m.partition);
      if (part_it == partitions.end()) continue;
      migrated += static_cast<int64_t>(part_it->second.size());
      if (move_store) {
        dst_it->second->maps[map_name][m.partition] = std::move(part_it->second);
        partitions.erase(part_it);
        // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
        stat_batched_moves_.fetch_add(1, std::memory_order_relaxed);
      } else {
        dst_it->second->maps[map_name][m.partition] = part_it->second;
      }
    }
  }
  return migrated;
}

PartitionStore* DataGrid::StoreFor(MemberId member, const std::string& map_name,
                                   PartitionId partition) {
  JET_DCHECK(partition >= 0 && partition < table_.partition_count());
  JET_DCHECK(partition_hold_[static_cast<size_t>(partition)].HeldByCurrentThread() &&
             "StoreFor requires the partition lock");
  auto it = members_.find(member);
  if (it == members_.end()) return nullptr;
  // The returned pointer stays valid after the layout mutex is released:
  // unordered_map nodes are stable, and erasure requires all partition
  // locks while the caller keeps holding this partition's.
  jet::MutexLock layout(it->second->layout_mutex);
  return &it->second->maps[map_name][partition];
}

const PartitionStore* DataGrid::StoreForConst(MemberId member,
                                              const std::string& map_name,
                                              PartitionId partition) const {
  JET_DCHECK(partition >= 0 && partition < table_.partition_count());
  JET_DCHECK(partition_hold_[static_cast<size_t>(partition)].HeldByCurrentThread() &&
             "StoreForConst requires the partition lock");
  auto it = members_.find(member);
  if (it == members_.end()) return nullptr;
  jet::MutexLock layout(it->second->layout_mutex);
  auto map_it = it->second->maps.find(map_name);
  if (map_it == it->second->maps.end()) return nullptr;
  auto part_it = map_it->second.find(partition);
  if (part_it == map_it->second.end()) return nullptr;
  return &part_it->second;
}

Status DataGrid::Put(const std::string& map_name, const Bytes& key, const Bytes& value) {
  return PutInPartition(map_name, PartitionOf(key), key, value);
}

int64_t DataGrid::AddEntryListener(const std::string& map_name, EntryListener listener) {
  jet::MutexLock lock(listener_mutex_);
  int64_t id = next_listener_id_++;
  listeners_[id] = {map_name, std::move(listener)};
  // Release-publish after the map insert so a Put seeing count > 0 also
  // sees the listener under listener_mutex_.
  listener_count_.store(static_cast<int64_t>(listeners_.size()),
                        std::memory_order_release);
  return id;
}

void DataGrid::RemoveEntryListener(int64_t listener_id) {
  jet::MutexLock lock(listener_mutex_);
  listeners_.erase(listener_id);
  listener_count_.store(static_cast<int64_t>(listeners_.size()),
                        std::memory_order_release);
}

std::vector<std::pair<Bytes, Bytes>> DataGrid::EntriesWhere(
    const std::string& map_name,
    const std::function<bool(const Bytes&, const Bytes&)>& predicate) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    ForEachInPartition(map_name, p, [&](const Bytes& k, const Bytes& v) {
      if (predicate(k, v)) out.emplace_back(k, v);
    });
  }
  return out;
}

Status DataGrid::PutInPartition(const std::string& map_name, PartitionId partition,
                                const Bytes& key, const Bytes& value) {
  if (partition < 0 || partition >= table_.partition_count()) {
    return InvalidArgumentError("partition out of range");
  }
  if (IsOwnedPair(map_name, partition)) {
    return FailedPreconditionError("partition is open for owned access");
  }
  {
    jet::ReaderLock layout(layout_rw_);
    jet::MutexLock lock(LockFor(partition));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
    MemberId primary = table_.PrimaryFor(partition);
    if (primary == kInvalidMember) return UnavailableError("no members in grid");
    PartitionStore* store = StoreFor(primary, map_name, partition);
    if (store == nullptr) return InternalError("primary member store missing");
    (*store)[key] = value;
    // Synchronous backups (§4.2): apply to every backup replica before
    // acknowledging.
    int64_t replicated = 0;
    for (int32_t i = 1; i <= table_.backup_count(); ++i) {
      MemberId backup = table_.ReplicaFor(partition, i);
      if (backup == kInvalidMember) continue;
      PartitionStore* backup_store = StoreFor(backup, map_name, partition);
      if (backup_store != nullptr) {
        (*backup_store)[key] = value;
        replicated += static_cast<int64_t>(key.size() + value.size());
      }
    }
    // jet-verify: allow(single-writer) — monotonic stats counters (RMW)
    stat_puts_.fetch_add(1, std::memory_order_relaxed);
    stat_replicated_bytes_.fetch_add(replicated, std::memory_order_relaxed);
  }
  // Notify listeners outside every grid lock (per the EntryListener
  // contract) so a listener may re-enter the grid. The acquire load skips
  // the lock + registry scan entirely when no listener exists — the
  // common case, which at bulk-load rates would otherwise put a global
  // mutex on every Put.
  if (listener_count_.load(std::memory_order_acquire) > 0) {
    std::vector<EntryListener> to_notify;
    {
      jet::MutexLock l(listener_mutex_);
      for (const auto& [id, entry] : listeners_) {
        if (entry.first == map_name) to_notify.push_back(entry.second);
      }
    }
    for (const auto& fn : to_notify) fn(key, value);
  }
  return Status::OK();
}

Result<std::optional<Bytes>> DataGrid::Get(const std::string& map_name,
                                           const Bytes& key) const {
  PartitionId partition = PartitionOf(key);
  if (IsOwnedPair(map_name, partition)) {
    return FailedPreconditionError("partition is open for owned access");
  }
  jet::ReaderLock layout(layout_rw_);
  jet::MutexLock lock(LockFor(partition));
  debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
  MemberId primary = table_.PrimaryFor(partition);
  if (primary == kInvalidMember) return UnavailableError("no members in grid");
  const PartitionStore* store = StoreForConst(primary, map_name, partition);
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_gets_.fetch_add(1, std::memory_order_relaxed);
  if (store == nullptr) return std::optional<Bytes>();
  auto it = store->find(key);
  if (it == store->end()) return std::optional<Bytes>();
  return std::optional<Bytes>(it->second);
}

Result<bool> DataGrid::Remove(const std::string& map_name, const Bytes& key) {
  PartitionId partition = PartitionOf(key);
  if (IsOwnedPair(map_name, partition)) {
    return FailedPreconditionError("partition is open for owned access");
  }
  jet::ReaderLock layout(layout_rw_);
  jet::MutexLock lock(LockFor(partition));
  debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
  MemberId primary = table_.PrimaryFor(partition);
  if (primary == kInvalidMember) return UnavailableError("no members in grid");
  PartitionStore* store = StoreFor(primary, map_name, partition);
  bool removed = store != nullptr && store->erase(key) > 0;
  for (int32_t i = 1; i <= table_.backup_count(); ++i) {
    MemberId backup = table_.ReplicaFor(partition, i);
    if (backup == kInvalidMember) continue;
    PartitionStore* backup_store = StoreFor(backup, map_name, partition);
    if (backup_store != nullptr) backup_store->erase(key);
  }
  // jet-verify: allow(single-writer) — monotonic stats counter (RMW)
  stat_removes_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

int64_t DataGrid::Size(const std::string& map_name) const {
  int64_t total = 0;
  jet::ReaderLock layout(layout_rw_);
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    if (IsOwnedPair(map_name, p)) continue;  // owner is sole reader/writer
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    MemberId primary = table_.PrimaryFor(p);
    if (primary == kInvalidMember) continue;
    const PartitionStore* store = StoreForConst(primary, map_name, p);
    if (store != nullptr) total += static_cast<int64_t>(store->size());
  }
  return total;
}

void DataGrid::Clear(const std::string& map_name) {
  jet::ReaderLock layout(layout_rw_);
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    if (IsOwnedPair(map_name, p)) continue;  // owner is sole reader/writer
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    for (auto& [id, member] : members_) {
      jet::MutexLock layout(member->layout_mutex);
      auto map_it = member->maps.find(map_name);
      if (map_it == member->maps.end()) continue;
      auto part_it = map_it->second.find(p);
      if (part_it != map_it->second.end()) part_it->second.clear();
    }
  }
}

void DataGrid::Destroy(const std::string& map_name) {
  // Erasing whole maps invalidates PartitionStore pointers held by entry
  // operations, so exclude them all — and quiesce owned handles, which
  // cache the same pointers without holding the shared lock.
  jet::WriterLock layout(layout_rw_);
  BumpLayoutEpochAndQuiesce();
  for (auto& [id, member] : members_) member->maps.erase(map_name);
}

std::vector<std::pair<Bytes, Bytes>> DataGrid::EntriesInPartition(
    const std::string& map_name, PartitionId partition) const {
  std::vector<std::pair<Bytes, Bytes>> out;
  ForEachInPartition(map_name, partition,
                     [&out](const Bytes& k, const Bytes& v) { out.emplace_back(k, v); });
  return out;
}

void DataGrid::ForEachInPartition(
    const std::string& map_name, PartitionId partition,
    const std::function<void(const Bytes&, const Bytes&)>& fn) const {
  if (IsOwnedPair(map_name, partition)) return;  // owner is sole reader/writer
  jet::ReaderLock layout(layout_rw_);
  jet::MutexLock lock(LockFor(partition));
  debug::ScopedHold hold(partition_hold_[static_cast<size_t>(partition)]);
  MemberId primary = table_.PrimaryFor(partition);
  if (primary == kInvalidMember) return;
  const PartitionStore* store = StoreForConst(primary, map_name, partition);
  if (store == nullptr) return;
  for (const auto& [k, v] : *store) fn(k, v);
}

GridStats DataGrid::stats() const {
  GridStats s;
  s.puts = stat_puts_.load(std::memory_order_relaxed);
  s.gets = stat_gets_.load(std::memory_order_relaxed);
  s.removes = stat_removes_.load(std::memory_order_relaxed);
  s.replicated_bytes = stat_replicated_bytes_.load(std::memory_order_relaxed);
  s.migrated_entries = stat_migrated_entries_.load(std::memory_order_relaxed);
  s.batched_moves = stat_batched_moves_.load(std::memory_order_relaxed);
  return s;
}

Status DataGrid::Reserve(const std::string& map_name, int64_t expected_entries) {
  if (expected_entries < 0) return InvalidArgumentError("negative reservation");
  jet::ReaderLock layout(layout_rw_);
  const int32_t partitions = table_.partition_count();
  if (partitions <= 0 || table_.members().empty()) {
    return UnavailableError("no members in grid");
  }
  // Even key placement puts n/p entries in each partition; reserve ~25%
  // above that so moderate skew still avoids the final rehash.
  const auto per_partition = static_cast<size_t>(
      (expected_entries + partitions - 1) / partitions + expected_entries / (partitions * 4));
  for (PartitionId p = 0; p < partitions; ++p) {
    if (IsOwnedPair(map_name, p)) continue;  // owner is sole reader/writer
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    for (int32_t i = 0; i <= table_.backup_count(); ++i) {
      MemberId replica = table_.ReplicaFor(p, i);
      if (replica == kInvalidMember) continue;
      PartitionStore* store = StoreFor(replica, map_name, p);
      if (store != nullptr) store->reserve(per_partition);
    }
  }
  return Status::OK();
}

GridUsage DataGrid::Usage() const {
  GridUsage usage;
  jet::ReaderLock layout(layout_rw_);
  const int32_t partitions = table_.partition_count();
  for (PartitionId p = 0; p < partitions; ++p) {
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    MemberId primary = table_.PrimaryFor(p);
    if (primary == kInvalidMember) continue;
    auto member_it = members_.find(primary);
    if (member_it == members_.end()) continue;
    int64_t partition_entries = 0;
    jet::MutexLock member_layout(member_it->second->layout_mutex);
    for (const auto& [map_name, map_partitions] : member_it->second->maps) {
      auto part_it = map_partitions.find(p);
      if (part_it == map_partitions.end()) continue;
      if (IsOwnedPair(map_name, p)) continue;  // owner is sole reader/writer
      partition_entries += static_cast<int64_t>(part_it->second.size());
      for (const auto& [k, v] : part_it->second) {
        usage.bytes_approx += static_cast<int64_t>(k.size() + v.size());
      }
    }
    usage.entries += partition_entries;
    usage.max_partition_entries = std::max(usage.max_partition_entries, partition_entries);
  }
  if (usage.entries > 0 && partitions > 0) {
    const double mean =
        static_cast<double>(usage.entries) / static_cast<double>(partitions);
    usage.partition_skew = static_cast<double>(usage.max_partition_entries) / mean;
  }
  return usage;
}

Result<std::unique_ptr<OwnedPartitionHandle>> DataGrid::AcquireOwnedPartition(
    const std::string& map_name, PartitionId partition, int64_t tasklet) {
  if (partition < 0 || partition >= table_.partition_count()) {
    return InvalidArgumentError("partition out of range");
  }
  if (!ownership_.IsOwnedBy(partition, tasklet)) {
    return FailedPreconditionError("partition " + std::to_string(partition) +
                                   " not claimed by tasklet " +
                                   std::to_string(tasklet));
  }
  auto handle = std::unique_ptr<OwnedPartitionHandle>(
      new OwnedPartitionHandle(this, map_name, partition, tasklet));
  // Resolve the replica pointers eagerly so the first owned operation pays
  // no refresh. A layout mutation sneaking in between this and the
  // registration below only bumps the epoch — the first operation then
  // detects the mismatch and re-resolves.
  handle->Refresh();
  if (handle->primary_ == nullptr) {
    handle->grid_ = nullptr;  // not registered; skip the destructor's unlink
    return UnavailableError("no members in grid");
  }
  {
    jet::MutexLock lock(owned_mutex_);
    for (const OwnedPartitionHandle* existing : owned_handles_registry_) {
      if (existing->partition_ == partition && existing->map_ == map_name) {
        handle->grid_ = nullptr;
        return Status(StatusCode::kAlreadyExists,
                      "owned handle already open for this (map, partition)");
      }
    }
    owned_handles_registry_.push_back(handle.get());
  }
  owned_active_.fetch_add(1, std::memory_order_acq_rel);
  return handle;
}

OwnedPartitionHandle::OwnedPartitionHandle(DataGrid* grid, std::string map,
                                           PartitionId partition, int64_t tasklet)
    : grid_(grid), map_(std::move(map)), partition_(partition), tasklet_(tasklet) {}

OwnedPartitionHandle::~OwnedPartitionHandle() {
  if (grid_ == nullptr) return;  // acquisition failed; never registered
  FoldStats();
  {
    jet::MutexLock lock(grid_->owned_mutex_);
    auto& registry = grid_->owned_handles_registry_;
    registry.erase(std::remove(registry.begin(), registry.end(), this),
                   registry.end());
  }
  grid_->owned_active_.fetch_sub(1, std::memory_order_acq_rel);
}

void OwnedPartitionHandle::FoldStats() {
  // jet-verify: allow(single-writer) — monotonic stats counters (RMW),
  // folded once per handle lifetime
  grid_->stat_puts_.fetch_add(local_puts_, std::memory_order_relaxed);
  grid_->stat_gets_.fetch_add(local_gets_, std::memory_order_relaxed);
  grid_->stat_removes_.fetch_add(local_removes_, std::memory_order_relaxed);
  grid_->stat_replicated_bytes_.fetch_add(local_replicated_,
                                          std::memory_order_relaxed);
  local_puts_ = local_gets_ = local_removes_ = local_replicated_ = 0;
}

void OwnedPartitionHandle::EnterOp() {
  JET_DCHECK_SINGLE_THREAD(guard_, "OwnedPartitionHandle operation");
  for (;;) {
    // Dekker pairing with BumpLayoutEpochAndQuiesce: the in-op publish and
    // the epoch validation must form a seq_cst store→load so that either
    // the mutator sees the flag or this op sees the new epoch.
    in_op_.store(true, std::memory_order_seq_cst);
    if (epoch_ == grid_->layout_epoch_.load(std::memory_order_seq_cst)) return;
    in_op_.store(false, std::memory_order_release);
    Refresh();
  }
}

void OwnedPartitionHandle::Refresh() JET_COOPERATIVE {
  // Slow path (layout changed): re-resolve under the grid's locks like any
  // locked entry operation would. Blocks while a layout mutation is in
  // progress, which is exactly the required behavior. Audited cooperative
  // boundary (see the declaration): bounded pointer re-resolution entered
  // only on a membership event, never on the steady-state hot path.
  jet::ReaderLock layout(grid_->layout_rw_);
  jet::MutexLock lock(grid_->LockFor(partition_));
  debug::ScopedHold hold(grid_->partition_hold_[static_cast<size_t>(partition_)]);
  // No mutator can run while we hold the shared lock, so the epoch read
  // here is consistent with the pointers resolved below.
  epoch_ = grid_->layout_epoch_.load(std::memory_order_seq_cst);
  primary_ = nullptr;
  backups_.clear();
  MemberId primary = grid_->table_.PrimaryFor(partition_);
  if (primary == kInvalidMember) return;
  primary_ = grid_->StoreFor(primary, map_, partition_);
  for (int32_t i = 1; i <= grid_->table_.backup_count(); ++i) {
    MemberId backup = grid_->table_.ReplicaFor(partition_, i);
    if (backup == kInvalidMember) continue;
    PartitionStore* store = grid_->StoreFor(backup, map_, partition_);
    if (store != nullptr) backups_.push_back(store);
  }
}

Status OwnedPartitionHandle::Put(const Bytes& key, const Bytes& value) {
  EnterOp();
  if (primary_ == nullptr) {
    ExitOp();
    return UnavailableError("no primary replica");
  }
  (*primary_)[key] = value;
  for (PartitionStore* backup : backups_) {
    (*backup)[key] = value;
    local_replicated_ += static_cast<int64_t>(key.size() + value.size());
  }
  ++local_puts_;
  ExitOp();
  return Status::OK();
}

Status OwnedPartitionHandle::Update(const Bytes& key,
                                    const std::function<void(Bytes*)>& fn) {
  EnterOp();
  if (primary_ == nullptr) {
    ExitOp();
    return UnavailableError("no primary replica");
  }
  Bytes& value = (*primary_)[key];
  fn(&value);
  for (PartitionStore* backup : backups_) {
    (*backup)[key] = value;
    local_replicated_ += static_cast<int64_t>(key.size() + value.size());
  }
  ++local_puts_;
  ExitOp();
  return Status::OK();
}

std::optional<Bytes> OwnedPartitionHandle::Get(const Bytes& key) {
  EnterOp();
  ++local_gets_;
  if (primary_ == nullptr) {
    ExitOp();
    return std::nullopt;
  }
  auto it = primary_->find(key);
  std::optional<Bytes> result;
  if (it != primary_->end()) result = it->second;
  ExitOp();
  return result;
}

bool OwnedPartitionHandle::Remove(const Bytes& key) {
  EnterOp();
  ++local_removes_;
  bool removed = primary_ != nullptr && primary_->erase(key) > 0;
  for (PartitionStore* backup : backups_) backup->erase(key);
  ExitOp();
  return removed;
}

int64_t OwnedPartitionHandle::Size() {
  EnterOp();
  int64_t size = primary_ == nullptr ? 0 : static_cast<int64_t>(primary_->size());
  ExitOp();
  return size;
}

void OwnedPartitionHandle::ForEach(
    const std::function<void(const Bytes&, const Bytes&)>& fn) {
  EnterOp();
  if (primary_ != nullptr) {
    for (const auto& [k, v] : *primary_) fn(k, v);
  }
  ExitOp();
}

Status DataGrid::CheckReplicaConsistency(const std::string& map_name) const {
  jet::ReaderLock layout(layout_rw_);
  for (PartitionId p = 0; p < table_.partition_count(); ++p) {
    if (IsOwnedPair(map_name, p)) continue;  // owner is sole reader/writer
    jet::MutexLock lock(LockFor(p));
    debug::ScopedHold hold(partition_hold_[static_cast<size_t>(p)]);
    MemberId primary = table_.PrimaryFor(p);
    if (primary == kInvalidMember) continue;
    const PartitionStore* primary_store = StoreForConst(primary, map_name, p);
    for (int32_t i = 1; i <= table_.backup_count(); ++i) {
      MemberId backup = table_.ReplicaFor(p, i);
      if (backup == kInvalidMember) continue;
      const PartitionStore* backup_store = StoreForConst(backup, map_name, p);
      size_t primary_size = primary_store == nullptr ? 0 : primary_store->size();
      size_t backup_size = backup_store == nullptr ? 0 : backup_store->size();
      if (primary_size != backup_size) {
        return InternalError("replica size mismatch in partition " + std::to_string(p));
      }
      if (primary_store == nullptr) continue;
      for (const auto& [k, v] : *primary_store) {
        auto it = backup_store->find(k);
        if (it == backup_store->end() || it->second != v) {
          return InternalError("replica entry mismatch in partition " +
                               std::to_string(p));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace jet::imdg
