#ifndef JETSIM_COMMON_CLOCK_H_
#define JETSIM_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace jet {

/// Nanoseconds since an arbitrary epoch. All engine-internal timestamps use
/// this unit so that the real engine (wall clock) and the discrete-event
/// simulator (virtual clock) share one time domain.
using Nanos = int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSecond = 1'000'000'000;

/// Converts milliseconds to nanoseconds.
constexpr Nanos MillisToNanos(int64_t millis) { return millis * kNanosPerMilli; }
/// Converts microseconds to nanoseconds.
constexpr Nanos MicrosToNanos(int64_t micros) { return micros * kNanosPerMicro; }
/// Converts nanoseconds to (truncated) milliseconds.
constexpr int64_t NanosToMillis(Nanos nanos) { return nanos / kNanosPerMilli; }
/// Converts nanoseconds to fractional milliseconds.
constexpr double NanosToMillisD(Nanos nanos) {
  return static_cast<double>(nanos) / static_cast<double>(kNanosPerMilli);
}

/// Abstract monotonic time source.
///
/// The production engine uses `WallClock`; tests and the discrete-event
/// simulator use `ManualClock` to make time deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Returns the current time in nanoseconds since the clock's epoch.
  virtual Nanos Now() const = 0;
};

/// Monotonic wall-clock backed by std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Returns a process-wide shared wall clock.
  static WallClock& Global();

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// A clock whose time only moves when explicitly advanced. Thread-safe.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : now_(start) {}

  Nanos Now() const override { return now_.load(std::memory_order_acquire); }

  /// Advances the clock by `delta` nanoseconds and returns the new time.
  Nanos Advance(Nanos delta) {
    return now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  }

  /// Sets the clock to an absolute time. `t` must not move time backwards.
  void SetTime(Nanos t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<Nanos> now_;
};

}  // namespace jet

#endif  // JETSIM_COMMON_CLOCK_H_
