#ifndef JETSIM_COMMON_DEBUG_CHECK_H_
#define JETSIM_COMMON_DEBUG_CHECK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Debug invariant checking for the concurrency-sensitive parts of jetsim.
///
/// Everything in this header compiles to nothing unless the build defines
/// `JETSIM_DEBUG_CHECKS=1` (CMake: `-DJETSIM_DEBUG_CHECKS=ON`, enabled by
/// the `asan-ubsan` preset). The checks exist to make contract violations —
/// a second producer on an SPSC queue, a tasklet Call() migrating off its
/// worker, a partition store touched without its lock — fail loudly at the
/// point of misuse instead of corrupting memory three modules away.
///
/// The TSan preset deliberately builds with the checks OFF so that the
/// sanitizer observes the raw unguarded accesses (the guards' own atomics
/// would otherwise order the racing threads enough to mask some races).

#ifndef JETSIM_DEBUG_CHECKS
#define JETSIM_DEBUG_CHECKS 0
#endif

namespace jet::debug {

/// Small process-unique id of the calling thread (never 0, so 0 can mean
/// "unowned"). Cheaper and more readable in failure messages than
/// std::thread::id.
inline uint64_t CurrentThreadId() {
  static std::atomic<uint64_t> next{1};
  // jet-verify: allow(single-writer) — id allocation: the RMW is atomic and
  // the id carries no payload ordering
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

[[noreturn]] inline void DieCheckFailed(const char* kind, const char* what,
                                        const char* file, int line, uint64_t owner,
                                        uint64_t self) {
  std::fprintf(stderr,
               "[JET_DCHECK %s] %s at %s:%d (owner thread %llu, offending thread "
               "%llu)\n",
               kind, what, file, line, static_cast<unsigned long long>(owner),
               static_cast<unsigned long long>(self));
  std::abort();
}

[[noreturn]] inline void DieExprFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[JET_DCHECK] %s at %s:%d\n", expr, file, line);
  std::abort();
}

#if JETSIM_DEBUG_CHECKS

/// Asserts single-owner discipline on a role (e.g. "the producer side of
/// this queue"): the first thread to call `Enforce` binds the role; any
/// other thread calling it afterwards aborts with both thread ids.
///
/// `Release` unbinds so a role can be handed off at a point where the
/// caller guarantees a happens-before edge (e.g. a test reusing a queue
/// after joining the worker).
class ThreadOwnershipGuard {
 public:
  void Enforce(const char* what, const char* file, int line) {
    const uint64_t self = CurrentThreadId();
    uint64_t expected = 0;
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed)) {
      return;  // first access: bind the role to this thread
    }
    if (expected != self) DieCheckFailed("ownership", what, file, line, expected, self);
  }

  // jet-verify: allow(single-writer) — debug ownership id, no payload
  // ordering; handoff edges come from the caller's own synchronization
  void Release() { owner_.store(0, std::memory_order_relaxed); }

  /// Owner thread id, or 0 when unbound. Test-inspection only.
  uint64_t owner() const { return owner_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> owner_{0};
};

/// Tracks which thread currently holds an associated external lock so that
/// functions documented "requires lock X held" can assert it. Paired with
/// `ScopedHold` at the lock sites.
class HoldTracker {
 public:
  // jet-verify: allow(single-writer) — debug holder ids written under the
  // tracked external lock; no payload ordering
  void MarkAcquired() { holder_.store(CurrentThreadId(), std::memory_order_relaxed); }
  void MarkReleased() { holder_.store(0, std::memory_order_relaxed); }
  bool HeldByCurrentThread() const {
    return holder_.load(std::memory_order_relaxed) == CurrentThreadId();
  }

 private:
  std::atomic<uint64_t> holder_{0};
};

/// RAII companion of HoldTracker; construct right after taking the lock.
class ScopedHold {
 public:
  explicit ScopedHold(HoldTracker& tracker) : tracker_(&tracker) {
    tracker_->MarkAcquired();
  }
  ~ScopedHold() { tracker_->MarkReleased(); }
  ScopedHold(const ScopedHold&) = delete;
  ScopedHold& operator=(const ScopedHold&) = delete;

 private:
  HoldTracker* tracker_;
};

#else  // !JETSIM_DEBUG_CHECKS

// Release builds: empty shells so call sites need no #if. Everything
// inlines to nothing.
class ThreadOwnershipGuard {
 public:
  void Enforce(const char*, const char*, int) {}
  void Release() {}
  uint64_t owner() const { return 0; }
};

class HoldTracker {
 public:
  void MarkAcquired() {}
  void MarkReleased() {}
  bool HeldByCurrentThread() const { return true; }
};

class ScopedHold {
 public:
  explicit ScopedHold(HoldTracker&) {}
};

#endif  // JETSIM_DEBUG_CHECKS

}  // namespace jet::debug

#if JETSIM_DEBUG_CHECKS

/// Aborts (with expression, file, line) when `cond` is false. Compiled out
/// entirely — `cond` is not evaluated — when checks are disabled, so it
/// must not guard side effects.
#define JET_DCHECK(cond)                                            \
  do {                                                              \
    if (!(cond)) ::jet::debug::DieExprFailed(#cond, __FILE__, __LINE__); \
  } while (0)

/// Evaluates `expr` (exactly once, in every build mode) and aborts if the
/// resulting Status is not OK.
#define JET_DCHECK_OK(expr)                                                   \
  do {                                                                        \
    const ::jet::Status jet_dcheck_status = (expr);                           \
    if (!jet_dcheck_status.ok()) {                                            \
      std::fprintf(stderr, "[JET_DCHECK_OK] %s -> %s at %s:%d\n", #expr,      \
                   jet_dcheck_status.ToString().c_str(), __FILE__, __LINE__); \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// Binds/asserts single-thread ownership of a role; see ThreadOwnershipGuard.
#define JET_DCHECK_SINGLE_THREAD(guard, what) (guard).Enforce(what, __FILE__, __LINE__)

#else  // !JETSIM_DEBUG_CHECKS

#define JET_DCHECK(cond) \
  do {                   \
    (void)sizeof(cond);  \
  } while (0)

#define JET_DCHECK_OK(expr)    \
  do {                         \
    (void)(expr);              \
  } while (0)

#define JET_DCHECK_SINGLE_THREAD(guard, what) \
  do {                                        \
    (void)(guard);                            \
    (void)(what);                             \
  } while (0)

#endif  // JETSIM_DEBUG_CHECKS

#endif  // JETSIM_COMMON_DEBUG_CHECK_H_
