#ifndef JETSIM_COMMON_LOGGING_H_
#define JETSIM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/thread_annotations.h"

namespace jet {

/// Log severity levels, ordered by importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Minimal thread-safe logger used across the library. Log lines below the
/// configured minimum level are compiled to a no-op stream.
class Logger {
 public:
  /// Returns the process-wide minimum level (default: kWarn, so library
  /// internals stay quiet in tests and benchmarks).
  static LogLevel& MinLevel() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }

  /// Serializes writes from multiple threads.
  static jet::Mutex& Mutex() {
    static jet::Mutex m;
    return m;
  }
};

namespace internal_logging {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }

  ~LogMessage() {
    stream_ << "\n";
    {
      jet::MutexLock lock(Logger::Mutex());
      std::cerr << stream_.str();
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO ";
      case LogLevel::kWarn:
        return "WARN ";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns a streamed expression into void so both arms of the JET_LOG
/// ternary have type void. operator& binds looser than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace jet

/// Streams a log line at the given level: JET_LOG(kInfo) << "...";
#define JET_LOG(level)                                                     \
  (::jet::LogLevel::level < ::jet::Logger::MinLevel() &&                   \
   ::jet::LogLevel::level != ::jet::LogLevel::kFatal)                      \
      ? (void)0                                                            \
      : ::jet::internal_logging::Voidify() &                               \
            ::jet::internal_logging::LogMessage(::jet::LogLevel::level,    \
                                                __FILE__, __LINE__)        \
                .stream()

/// Fatal check macro: aborts with a message when `cond` is false.
#define JET_CHECK(cond)                                                       \
  if (!(cond))                                                                \
  ::jet::internal_logging::LogMessage(::jet::LogLevel::kFatal, __FILE__,      \
                                      __LINE__)                               \
      .stream()                                                               \
      << "Check failed: " #cond " "

#endif  // JETSIM_COMMON_LOGGING_H_
