#ifndef JETSIM_COMMON_BACKOFF_H_
#define JETSIM_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/clock.h"
#include "common/rng.h"

namespace jet {

/// Knobs of a retry ladder: a bounded budget of retries, exponential
/// backoff between them, and seeded jitter to spread simultaneous retries.
/// Extracted from the PR 4 job supervisor so every self-healing layer
/// (job restarts, member respawns, socket reconnects) shares one policy
/// vocabulary and one deterministic jitter implementation.
struct BackoffOptions {
  /// Retries allowed before the protected operation is declared failed.
  int32_t retry_budget = 8;
  Nanos initial_backoff = 20 * kNanosPerMilli;
  double backoff_multiplier = 2.0;
  Nanos max_backoff = 2 * kNanosPerSecond;
  /// Seed of the jitter stream (xored with the caller's stream id):
  /// deterministic per seed, decorrelated per protected resource.
  uint64_t jitter_seed = 0x5E1F;
  /// Jitter added on top of the base backoff, as a fraction of it.
  double jitter_fraction = 0.25;
};

/// Deterministic retry/backoff ladder with a budget. Not thread-safe: the
/// owner serializes calls (the supervisor control thread, the procmode
/// coordinator's supervisor loop, or a single connecting thread).
class RetryBackoff {
 public:
  /// `stream_id` decorrelates jitter between instances sharing a seed
  /// (job id, member index, connection ordinal).
  RetryBackoff(const BackoffOptions& options, uint64_t stream_id)
      : options_(options),
        jitter_(options.jitter_seed ^ stream_id),
        budget_remaining_(options.retry_budget) {}

  /// Charges one retry and returns the jittered delay to wait before it,
  /// or std::nullopt when the budget is exhausted (the caller must fail).
  /// Each call advances the exponent ladder.
  std::optional<Nanos> NextDelay() {
    if (budget_remaining_ <= 0) return std::nullopt;
    --budget_remaining_;
    double base = static_cast<double>(options_.initial_backoff);
    for (int32_t i = 0; i < consecutive_failures_; ++i) {
      base *= options_.backoff_multiplier;
      if (base >= static_cast<double>(options_.max_backoff)) break;
    }
    auto delay = std::min<Nanos>(static_cast<Nanos>(base), options_.max_backoff);
    if (options_.jitter_fraction > 0 && delay > 0) {
      auto span = static_cast<uint64_t>(static_cast<double>(delay) *
                                        options_.jitter_fraction);
      if (span > 0) delay += static_cast<Nanos>(jitter_.NextBounded(span));
    }
    ++consecutive_failures_;
    last_delay_ = delay;
    return delay;
  }

  /// Charges one retry WITHOUT advancing the ladder or drawing jitter.
  /// Storm coalescing: a second casualty of one incident shares the
  /// already-scheduled backoff step but still costs budget. Returns false
  /// when the budget is exhausted.
  bool Charge() {
    if (budget_remaining_ <= 0) return false;
    --budget_remaining_;
    return true;
  }

  /// Resets the exponent ladder (stability-window damping: after a long
  /// healthy stretch, the next incident starts from initial_backoff).
  /// Does not refund budget.
  void ResetLadder() { consecutive_failures_ = 0; }

  int32_t budget_remaining() const { return budget_remaining_; }
  int32_t consecutive_failures() const { return consecutive_failures_; }
  Nanos last_delay() const { return last_delay_; }

 private:
  BackoffOptions options_;
  Rng jitter_;
  int32_t budget_remaining_ = 0;
  int32_t consecutive_failures_ = 0;
  Nanos last_delay_ = 0;
};

}  // namespace jet

#endif  // JETSIM_COMMON_BACKOFF_H_
