#ifndef JETSIM_COMMON_HISTOGRAM_H_
#define JETSIM_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jet {

/// HDR-style log-bucketed histogram for latency recording.
///
/// Values (typically nanoseconds) are bucketed with a bounded relative error
/// of about 1/64 (two significant decimal digits): each power-of-two range
/// is split into 64 linear sub-buckets. Recording is O(1) and allocation
/// free after construction; percentile queries are O(#buckets).
///
/// The histogram is NOT thread-safe; each recording thread should own one
/// and merge at the end (see `Merge`). obs::AtomicHistogram provides the
/// concurrent-read variant built on the same bucket layout (the static
/// helpers below).
class Histogram {
 public:
  /// Creates a histogram able to record values in [0, max_value]. Values
  /// above `max_value` are clamped and counted in the top bucket.
  explicit Histogram(int64_t max_value = int64_t{1} << 42);

  /// Records one observation of `value` (negative values clamp to 0).
  void Record(int64_t value) { RecordN(value, 1); }

  /// Records `count` observations of `value`.
  void RecordN(int64_t value, int64_t count);

  /// Adds all recorded values of `other` into this histogram. Returns false
  /// (and leaves this histogram untouched) when the two were created with
  /// different `max_value`s: their bucket layouts differ, so merging would
  /// silently misattribute counts.
  bool Merge(const Histogram& other);

  /// Adds externally captured per-bucket counts (e.g. an
  /// obs::AtomicHistogram snapshot using the same bucket layout) together
  /// with their value-range/sum summary. Returns false when `n` does not
  /// match this histogram's bucket count.
  bool MergeBucketCounts(const int64_t* counts, size_t n, int64_t min_value,
                         int64_t max_value_seen, double sum);

  /// Removes all recorded values.
  void Reset();

  /// Total number of recorded observations.
  int64_t count() const { return count_; }

  /// Smallest recorded value (0 if empty).
  int64_t min() const { return count_ == 0 ? 0 : min_; }

  /// Largest recorded value (0 if empty), subject to bucket rounding.
  int64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Upper bound this histogram was created with.
  int64_t max_value() const { return max_value_; }

  /// Arithmetic mean of recorded values (0 if empty).
  double Mean() const;

  /// Returns the value at quantile `q` in [0, 1]; e.g. q=0.9999 for the
  /// 99.99th percentile. Returns 0 when empty. q <= 0 returns the exact
  /// minimum and q >= 1 the exact maximum; in between, the returned value
  /// is the upper edge of the bucket containing the quantile, so it never
  /// under-reports by more than the bucket's relative error.
  int64_t ValueAtQuantile(double q) const;

  /// Convenience for ValueAtQuantile(percentile / 100).
  int64_t ValueAtPercentile(double percentile) const {
    return ValueAtQuantile(percentile / 100.0);
  }

  /// Renders a short single-line summary with the standard percentiles,
  /// with values scaled by `unit` and suffixed by `unit_name` (e.g. unit =
  /// 1e6, unit_name = "ms" to print nanosecond recordings as milliseconds).
  std::string Summary(double unit = 1.0, const std::string& unit_name = "") const;

  /// Returns (quantile, value) pairs suitable for plotting a percentile
  /// distribution curve like the paper's Figures 9/11/12/13. Quantiles are
  /// expressed as "number of nines"-style steps: 0.5, 0.75, 0.9, 0.99, ...
  std::vector<std::pair<double, int64_t>> PercentileCurve() const;

  // --- bucket layout, shared with obs::AtomicHistogram ---

  /// Bucket index of `value` in a histogram bounded by `max_value`
  /// (clamping applied).
  static int BucketIndexOf(int64_t value, int64_t max_value);

  /// Upper edge (inclusive) of bucket `index`.
  static int64_t BucketUpperEdgeOf(int index);

  /// Number of buckets a histogram bounded by `max_value` allocates.
  static int BucketCountFor(int64_t max_value) {
    return BucketIndexOf(max_value, max_value) + 1;
  }

 private:
  static constexpr int kSubBucketBits = 6;                    // 64 sub-buckets
  static constexpr int kSubBucketCount = 1 << kSubBucketBits; // per power of 2

  int BucketIndexFor(int64_t value) const { return BucketIndexOf(value, max_value_); }

  int64_t max_value_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
  std::vector<int64_t> buckets_;
};

}  // namespace jet

#endif  // JETSIM_COMMON_HISTOGRAM_H_
