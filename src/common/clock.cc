#include "common/clock.h"

namespace jet {

WallClock& WallClock::Global() {
  static WallClock* clock = new WallClock();
  return *clock;
}

}  // namespace jet
