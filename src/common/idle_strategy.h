#ifndef JETSIM_COMMON_IDLE_STRATEGY_H_
#define JETSIM_COMMON_IDLE_STRATEGY_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace jet {

/// Progressive back-off used by cooperative worker threads when none of
/// their tasklets made progress (§3.2: "when a tasklet has no work to do it
/// backs off from the thread").
///
/// The strategy escalates: busy-spin -> std::this_thread::yield ->
/// sleep with exponentially growing duration up to `max_park_nanos`. Any
/// call to `Reset()` (made when work was found) restarts from spinning,
/// keeping the reaction latency to new input minimal.
class BackoffIdleStrategy {
 public:
  /// `max_spins` busy iterations, then `max_yields` sched yields, then
  /// parking from `min_park_nanos` doubling up to `max_park_nanos`.
  explicit BackoffIdleStrategy(int64_t max_spins = 10, int64_t max_yields = 5,
                               int64_t min_park_nanos = 1'000,
                               int64_t max_park_nanos = 100'000)
      : max_spins_(max_spins),
        max_yields_(max_yields),
        min_park_nanos_(min_park_nanos),
        max_park_nanos_(max_park_nanos) {}

  /// Called when an idle iteration completes without work.
  void Idle() {
    if (spins_ < max_spins_) {
      ++spins_;
      CpuRelax();
      return;
    }
    if (yields_ < max_yields_) {
      ++yields_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(park_nanos_));
    park_nanos_ = park_nanos_ * 2 <= max_park_nanos_ ? park_nanos_ * 2 : max_park_nanos_;
  }

  /// Called when work was found; restarts the back-off ladder.
  void Reset() {
    spins_ = 0;
    yields_ = 0;
    park_nanos_ = min_park_nanos_;
  }

  /// True once the strategy has escalated to parking (useful for tests and
  /// idle-time accounting).
  bool IsParking() const { return spins_ >= max_spins_ && yields_ >= max_yields_; }

 private:
  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  const int64_t max_spins_;
  const int64_t max_yields_;
  const int64_t min_park_nanos_;
  const int64_t max_park_nanos_;

  int64_t spins_ = 0;
  int64_t yields_ = 0;
  int64_t park_nanos_ = 1'000;
};

}  // namespace jet

#endif  // JETSIM_COMMON_IDLE_STRATEGY_H_
