#ifndef JETSIM_COMMON_THREAD_ANNOTATIONS_H_
#define JETSIM_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis vocabulary (-Wthread-safety) plus the
/// capability-annotated mutex wrappers the rest of the codebase uses.
///
/// Two enforcement layers share this header:
///
///  1. The compiler. Under Clang, `-Wthread-safety -Werror=thread-safety`
///     (enabled by JETSIM_THREAD_SAFETY in CMakeLists.txt) statically
///     proves that every JET_GUARDED_BY member is only touched with its
///     mutex held, that JET_REQUIRES contracts hold at every call site,
///     and that JET_EXCLUDES-annotated entry points are never entered
///     with the named lock held (re-entrancy / inversion guard). Under
///     GCC every macro expands to nothing — the wrappers behave exactly
///     like the std primitives they wrap.
///
///  2. tools/jet_verify.py. The AST checker recognizes the same tokens
///     textually (and via libclang `annotate` attributes when available):
///     JET_BLOCKING marks a function as blocking — any call path from a
///     cooperative Tasklet::Call()/Processor::Process() implementation
///     into it is a `blocking-in-call` error (§3.2's 1 ms budget).
///     JET_COOPERATIVE marks a function as audited cooperative-safe
///     (bounded, uncontended critical sections only); the checker trusts
///     the annotation and does not descend into the body. Use it the way
///     you would use JET_NO_THREAD_SAFETY_ANALYSIS: sparingly, with a
///     comment explaining why the audit holds.
///
/// Division of labor with the runtime layer (DESIGN.md §6): these
/// annotations prove *lock discipline* at compile time; the
/// debug::ThreadOwnershipGuard / tsan lanes prove *lock-free single-writer
/// discipline* at runtime, which no static mutex analysis can see.

#if defined(__clang__) && !defined(JETSIM_NO_THREAD_SAFETY_ANALYSIS)
#define JET_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define JET_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex", "shared_mutex", ...).
#define JET_CAPABILITY(x) JET_THREAD_ANNOTATION__(capability(x))

/// Declares a RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define JET_SCOPED_CAPABILITY JET_THREAD_ANNOTATION__(scoped_lockable)

/// Member may only be accessed while holding the given mutex.
#define JET_GUARDED_BY(x) JET_THREAD_ANNOTATION__(guarded_by(x))

/// Pointed-to data may only be accessed while holding the given mutex.
#define JET_PT_GUARDED_BY(x) JET_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the mutex(es) held (exclusively) on entry.
#define JET_REQUIRES(...) \
  JET_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires the mutex(es) held (at least shared) on entry.
#define JET_REQUIRES_SHARED(...) \
  JET_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and does not release them.
#define JET_ACQUIRE(...) \
  JET_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define JET_ACQUIRE_SHARED(...) \
  JET_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex(es); they must be held on entry.
#define JET_RELEASE(...) \
  JET_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define JET_RELEASE_SHARED(...) \
  JET_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define JET_TRY_ACQUIRE(...) \
  JET_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es) — the function acquires them itself.
/// This is the re-entrancy / ordering annotation: putting it on public
/// entry points makes a later lock inversion a compile error under clang.
#define JET_EXCLUDES(...) JET_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares a required acquisition order between mutexes.
#define JET_ACQUIRED_BEFORE(...) \
  JET_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define JET_ACQUIRED_AFTER(...) \
  JET_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define JET_RETURN_CAPABILITY(x) JET_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function out of the analysis. Every use must carry a comment
/// explaining why the analysis cannot see the invariant that makes the
/// function safe (e.g. a lock handed across threads by protocol).
#define JET_NO_THREAD_SAFETY_ANALYSIS \
  JET_THREAD_ANNOTATION__(no_thread_safety_analysis)

// --- jet-verify annotation vocabulary --------------------------------------
// These do not participate in -Wthread-safety; they are contracts for the
// cooperative-blocking checker (tools/jet_verify.py).

#if defined(__clang__)
/// Marks a function as blocking (unbounded wait, sleep, or blocking I/O).
/// Reaching it from a cooperative root is a `blocking-in-call` error.
#define JET_BLOCKING __attribute__((annotate("jet::blocking")))
/// Marks a function as audited cooperative-safe despite taking locks
/// (bounded, uncontended critical section). The checker trusts this and
/// stops descending; pair it with a comment justifying the audit.
#define JET_COOPERATIVE __attribute__((annotate("jet::cooperative")))
#else
#define JET_BLOCKING
#define JET_COOPERATIVE
#endif

namespace jet {

/// Capability-annotated std::mutex. Drop-in BasicLockable, so it also
/// works directly with CondVar (condition_variable_any) below.
class JET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() JET_ACQUIRE() { mu_.lock(); }
  void unlock() JET_RELEASE() { mu_.unlock(); }
  bool try_lock() JET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // Raw primitive allowed here: this header IS the wrapper layer and is
  // exempt from jet-verify's raw-mutex rule.
  std::mutex mu_;
};

/// Capability-annotated std::shared_mutex (the DataGrid layout lock).
class JET_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() JET_ACQUIRE() { mu_.lock(); }
  void unlock() JET_RELEASE() { mu_.unlock(); }
  bool try_lock() JET_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() JET_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() JET_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() JET_TRY_ACQUIRE(true) { return mu_.try_lock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (std::scoped_lock replacement the
/// analysis understands).
class JET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) JET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() JET_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock that can be dropped and re-taken mid-scope (the
/// hand-over-hand pattern in Network::DeliveryLoop and RebalanceLoop).
class JET_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) JET_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueMutexLock() JET_RELEASE() {
    if (held_) mu_.unlock();
  }

  void Unlock() JET_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void Lock() JET_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// RAII shared (reader) lock on a SharedMutex.
class JET_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) JET_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() JET_RELEASE_SHARED() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class JET_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) JET_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() JET_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with jet::Mutex. Backed by
/// condition_variable_any so it waits on the annotated wrapper directly;
/// all control-plane paths (network delivery, cluster control loop,
/// rebalancer) wait through this type, never on a cooperative path.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, re-acquires `mu` before returning.
  void Wait(Mutex& mu) JET_BLOCKING JET_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) JET_BLOCKING JET_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      JET_BLOCKING JET_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d, Pred pred)
      JET_BLOCKING JET_REQUIRES(mu) {
    return cv_.wait_for(mu, d, std::move(pred));
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace jet

#endif  // JETSIM_COMMON_THREAD_ANNOTATIONS_H_
