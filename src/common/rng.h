#ifndef JETSIM_COMMON_RNG_H_
#define JETSIM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace jet {

/// Fast, deterministic pseudo-random number generator (xoshiro256**).
///
/// Used throughout the workload generators and the discrete-event simulator
/// where reproducibility across runs matters. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator. Two generators with equal seeds produce identical
  /// sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is negligible for bounds far below 2^64.
    return static_cast<uint64_t>((static_cast<__uint128_t>(NextU64()) * bound) >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns an exponentially distributed double with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Returns a normally distributed double (Box-Muller, one value per call).
  double NextGaussian(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// 64-bit avalanche hash (SplitMix64 finalizer). Used for key partitioning;
/// stable across platforms and runs.
inline uint64_t HashU64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Combines two hashes (boost::hash_combine style, 64-bit variant).
inline uint64_t HashCombine(uint64_t h, uint64_t k) {
  return h ^ (HashU64(k) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

/// FNV-1a hash over a byte range; used for hashing string keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace jet

#endif  // JETSIM_COMMON_RNG_H_
