#ifndef JETSIM_COMMON_SERDE_H_
#define JETSIM_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace jet {

/// Owned byte buffer used for serialized keys/values and network payloads.
using Bytes = std::vector<uint8_t>;

/// Appends primitive values to a byte buffer in a compact portable format.
///
/// Integers use little-endian fixed width or LEB128 varints; strings are
/// length-prefixed. This is the wire/storage format for IMDG entries,
/// snapshot state, and the in-process network transport.
class BytesWriter {
 public:
  BytesWriter() = default;
  explicit BytesWriter(Bytes initial) : buf_(std::move(initial)) {}

  /// Appends a single byte.
  void WriteU8(uint8_t v) { buf_.push_back(v); }

  /// Appends a fixed-width little-endian 32-bit value.
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }

  /// Appends a fixed-width little-endian 64-bit value.
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }

  /// Appends a fixed-width little-endian signed 64-bit value.
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }

  /// Appends an IEEE-754 double.
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }

  /// Appends an unsigned LEB128 varint.
  void WriteVarU64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Appends a zigzag-encoded signed varint.
  void WriteVarI64(int64_t v) {
    WriteVarU64((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  /// Appends a varint length followed by the string bytes.
  void WriteString(const std::string& s) {
    WriteVarU64(s.size());
    AppendRaw(s.data(), s.size());
  }

  /// Appends a varint length followed by the raw bytes.
  void WriteBytes(const Bytes& b) {
    WriteVarU64(b.size());
    AppendRaw(b.data(), b.size());
  }

  /// Appends raw bytes without a length prefix.
  void AppendRaw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  /// Returns the accumulated buffer, leaving this writer empty.
  Bytes Take() { return std::move(buf_); }

  /// Read-only view of the accumulated buffer.
  const Bytes& buffer() const { return buf_; }

  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads primitive values from a byte buffer written by BytesWriter.
///
/// All read methods return an error Status on underflow or malformed input
/// instead of crashing; the reader position is unspecified after an error.
class BytesReader {
 public:
  /// The reader does not own the data; `data` must outlive the reader.
  BytesReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit BytesReader(const Bytes& b) : BytesReader(b.data(), b.size()) {}

  Status ReadU8(uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  /// Reads an unsigned LEB128 varint.
  Status ReadVarU64(uint64_t* out) {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_) return OutOfRangeError("varint truncated");
      if (shift >= 64) return InvalidArgumentError("varint too long");
      uint8_t byte = data_[pos_++];
      // The 10th byte lands at shift 63 and may only carry bit 0; anything
      // in bits 1..6 would be shifted past bit 63 and silently lost,
      // decoding an overflowing varint to a wrong value.
      if (shift == 63 && (byte & 0x7E) != 0) {
        return InvalidArgumentError("varint overflows 64 bits");
      }
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *out = result;
    return Status::OK();
  }

  /// Reads a zigzag-encoded signed varint.
  Status ReadVarI64(int64_t* out) {
    uint64_t raw = 0;
    JET_RETURN_IF_ERROR(ReadVarU64(&raw));
    *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return Status::OK();
  }

  /// Reads a length-prefixed string.
  Status ReadString(std::string* out) {
    uint64_t n = 0;
    JET_RETURN_IF_ERROR(ReadVarU64(&n));
    if (n > Remaining()) return OutOfRangeError("string truncated");
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  /// Reads a length-prefixed byte buffer.
  Status ReadBytes(Bytes* out) {
    uint64_t n = 0;
    JET_RETURN_IF_ERROR(ReadVarU64(&n));
    if (n > Remaining()) return OutOfRangeError("bytes truncated");
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return Status::OK();
  }

  /// Reads `len` raw bytes into `out`.
  Status ReadRaw(void* out, size_t len) {
    if (len > Remaining()) return OutOfRangeError("buffer underflow");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  /// Number of unread bytes.
  size_t Remaining() const { return len_ - pos_; }

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace jet

#endif  // JETSIM_COMMON_SERDE_H_
