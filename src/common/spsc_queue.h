#ifndef JETSIM_COMMON_SPSC_QUEUE_H_
#define JETSIM_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace jet {

/// Wait-free bounded single-producer/single-consumer ring queue.
///
/// This is the data-exchange primitive between tasklets described in §3.2 of
/// the paper: "Tasklets within the same node exchange data through
/// shared-memory, single-producer-single-consumer queues that use wait-free
/// algorithms." Producer and consumer each cache the other side's index to
/// avoid cache-line ping-pong; indices live on separate cache lines.
///
/// Exactly one thread may call the producer methods (TryPush/PushBatch) and
/// exactly one thread the consumer methods (TryPop/DrainTo/...). Capacity is
/// rounded up to a power of two.
template <typename T>
class SpscQueue {
 public:
  /// Creates a queue that can hold up to `capacity` items (rounded up to the
  /// next power of two, minimum 2).
  explicit SpscQueue(size_t capacity)
      : capacity_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: attempts to enqueue `item`. Returns false if the queue is
  /// full (item is left untouched so the caller can retry later).
  bool TryPush(T& item) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer: rvalue convenience overload.
  bool TryPush(T&& item) {
    T local = std::move(item);
    if (TryPush(local)) return true;
    item = std::move(local);
    return false;
  }

  /// Producer: enqueues items from [first, last) until the queue fills up.
  /// Returns the number of items enqueued. Enqueued items are moved-from.
  template <typename It>
  size_t PushBatch(It first, It last) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t free_slots = capacity_ - (head - cached_tail_);
    if (free_slots == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free_slots = capacity_ - (head - cached_tail_);
      if (free_slots == 0) return 0;
    }
    size_t n = 0;
    for (It it = first; it != last && n < free_slots; ++it, ++n) {
      slots_[(head + n) & mask_] = std::move(*it);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer: attempts to dequeue into `out`. Returns false if empty.
  bool TryPop(T& out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: moves up to `limit` items into `sink` (a callable taking
  /// `T&&`). Returns the number of items drained.
  template <typename Sink>
  size_t DrainTo(Sink&& sink, size_t limit) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t available = cached_head_ - tail;
    if (available == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      available = cached_head_ - tail;
      if (available == 0) return 0;
    }
    const size_t n = available < limit ? available : limit;
    for (size_t i = 0; i < n; ++i) {
      sink(std::move(slots_[(tail + i) & mask_]));
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer: returns a pointer to the front item without removing it, or
  /// nullptr if the queue is empty.
  T* Peek() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) return nullptr;
    }
    return &slots_[tail & mask_];
  }

  /// Consumer: removes the front item. Requires a preceding successful
  /// Peek() on the same thread.
  void PopFront() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    assert(cached_head_ != tail && "PopFront without Peek");
    slots_[tail & mask_] = T();
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Approximate number of enqueued items (exact if called by the consumer
  /// with no concurrent producer, and vice versa).
  size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  /// True if the queue appears empty.
  bool EmptyApprox() const { return SizeApprox() == 0; }

  /// Fixed capacity of the queue.
  size_t capacity() const { return capacity_; }

 private:
  static constexpr size_t kCacheLine = 64;

  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLine) std::atomic<size_t> head_{0};  // next write position
  alignas(kCacheLine) size_t cached_tail_{0};        // producer's view of tail_
  alignas(kCacheLine) std::atomic<size_t> tail_{0};  // next read position
  alignas(kCacheLine) size_t cached_head_{0};        // consumer's view of head_
};

}  // namespace jet

#endif  // JETSIM_COMMON_SPSC_QUEUE_H_
