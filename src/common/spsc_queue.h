#ifndef JETSIM_COMMON_SPSC_QUEUE_H_
#define JETSIM_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "common/debug_check.h"

namespace jet {

/// Wait-free bounded single-producer/single-consumer ring queue.
///
/// This is the data-exchange primitive between tasklets described in §3.2 of
/// the paper: "Tasklets within the same node exchange data through
/// shared-memory, single-producer-single-consumer queues that use wait-free
/// algorithms." Producer and consumer each cache the other side's index to
/// avoid cache-line ping-pong; indices live on separate cache lines.
///
/// Exactly one thread may call the producer methods (TryPush/PushBatch) and
/// exactly one thread the consumer methods (TryPop/DrainTo/...). Capacity is
/// rounded up to a power of two. Under JETSIM_DEBUG_CHECKS each side's role
/// binds to the first thread that exercises it and any second thread aborts
/// (see debug::ThreadOwnershipGuard).
template <typename T>
class SpscQueue {
 public:
  /// Creates a queue that can hold up to `capacity` items (rounded up to the
  /// next power of two, minimum 2).
  explicit SpscQueue(size_t capacity)
      : capacity_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: attempts to enqueue `item`. Returns false if the queue is
  /// full (item is left untouched so the caller can retry later).
  bool TryPush(T& item) {
    JET_DCHECK_SINGLE_THREAD(producer_guard_, "SpscQueue producer (TryPush)");
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer: rvalue convenience overload.
  bool TryPush(T&& item) {
    T local = std::move(item);
    if (TryPush(local)) return true;
    item = std::move(local);
    return false;
  }

  /// Producer: enqueues items from [first, last) until the queue fills up.
  /// Returns the number of items enqueued. Enqueued items are moved-from.
  template <typename It>
  size_t PushBatch(It first, It last) {
    JET_DCHECK_SINGLE_THREAD(producer_guard_, "SpscQueue producer (PushBatch)");
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t free_slots = capacity_ - (head - cached_tail_);
    if (free_slots == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free_slots = capacity_ - (head - cached_tail_);
      if (free_slots == 0) return 0;
    }
    size_t n = 0;
    for (It it = first; it != last && n < free_slots; ++it, ++n) {
      slots_[(head + n) & mask_] = std::move(*it);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer: attempts to dequeue into `out`. Returns false if empty.
  bool TryPop(T& out) {
    JET_DCHECK_SINGLE_THREAD(consumer_guard_, "SpscQueue consumer (TryPop)");
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: moves up to `limit` items into `sink` (a callable taking
  /// `T&&`). Returns the number of items drained.
  template <typename Sink>
  size_t DrainTo(Sink&& sink, size_t limit) {
    JET_DCHECK_SINGLE_THREAD(consumer_guard_, "SpscQueue consumer (DrainTo)");
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t available = cached_head_ - tail;
    if (available == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      available = cached_head_ - tail;
      if (available == 0) return 0;
    }
    const size_t n = available < limit ? available : limit;
    for (size_t i = 0; i < n; ++i) {
      sink(std::move(slots_[(tail + i) & mask_]));
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer: moves items into `sink` (a callable taking `T&&`) while
  /// `pred` (a callable taking `const T&`) approves the front item, up to
  /// `limit` items. The predicate inspects each item *before* it is moved,
  /// so control items can stop the drain without being consumed. All moved
  /// items are released with a single index update, unlike a Peek/PopFront
  /// loop which publishes (and fences) per item. Returns the number moved.
  template <typename Pred, typename Sink>
  size_t DrainWhile(Pred&& pred, Sink&& sink, size_t limit) {
    JET_DCHECK_SINGLE_THREAD(consumer_guard_, "SpscQueue consumer (DrainWhile)");
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t available = cached_head_ - tail;
    if (available == 0) {
      cached_head_ = head_.load(std::memory_order_acquire);
      available = cached_head_ - tail;
      if (available == 0) return 0;
    }
    const size_t max = available < limit ? available : limit;
    size_t n = 0;
    while (n < max && pred(static_cast<const T&>(slots_[(tail + n) & mask_]))) {
      sink(std::move(slots_[(tail + n) & mask_]));
      ++n;
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer: returns a pointer to the front item without removing it, or
  /// nullptr if the queue is empty.
  T* Peek() {
    JET_DCHECK_SINGLE_THREAD(consumer_guard_, "SpscQueue consumer (Peek)");
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) return nullptr;
    }
    return &slots_[tail & mask_];
  }

  /// Consumer: removes the front item. Requires a preceding successful
  /// Peek() on the same thread (checked under JETSIM_DEBUG_CHECKS).
  void PopFront() {
    JET_DCHECK_SINGLE_THREAD(consumer_guard_, "SpscQueue consumer (PopFront)");
    const size_t tail = tail_.load(std::memory_order_relaxed);
    JET_DCHECK(cached_head_ != tail && "PopFront without preceding Peek");
    slots_[tail & mask_] = T();
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Approximate number of enqueued items (exact if called by the consumer
  /// with no concurrent producer, and vice versa). Loads tail before head:
  /// tail never overtakes head, so the difference cannot underflow, and the
  /// clamp bounds the transient overshoot that is possible when both sides
  /// move between the two loads. The result is always <= capacity().
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t diff = head - tail;
    return diff > capacity_ ? capacity_ : diff;
  }

  /// True if the queue appears empty.
  bool EmptyApprox() const { return SizeApprox() == 0; }

  /// Fixed capacity of the queue.
  size_t capacity() const { return capacity_; }

  /// Test hook: starts both indices (and the cached mirrors) at `start`, so
  /// wraparound of the unsigned indices — e.g. head near SIZE_MAX — can be
  /// exercised without 2^64 pushes. Only valid on a queue that has never
  /// been used.
  void SeedIndexesForTest(size_t start) {
    assert(head_.load(std::memory_order_relaxed) == 0 &&
           tail_.load(std::memory_order_relaxed) == 0 && "queue already used");
    // jet-verify: allow(single-writer) — test hook on a never-used queue:
    // no concurrent producer/consumer exists yet, nothing is published
    head_.store(start, std::memory_order_relaxed);
    tail_.store(start, std::memory_order_relaxed);
    cached_tail_ = start;
    cached_head_ = start;
  }

  /// Unbinds the producer ownership guard so the producing role can be
  /// handed to another thread. The caller must guarantee a happens-before
  /// edge between the old producer's last push and the new producer's first
  /// (the ExecutionService migration protocol does this with the worker
  /// mailbox mutex). No-op unless JETSIM_DEBUG_CHECKS is enabled.
  void ReleaseProducerOwnership() { producer_guard_.Release(); }

  /// Consumer-side counterpart of ReleaseProducerOwnership.
  void ReleaseConsumerOwnership() { consumer_guard_.Release(); }

  /// Test hook: unbinds the producer/consumer ownership guards so a test
  /// may hand the queue to different threads after establishing a
  /// happens-before edge (e.g. joining the previous owner). No-op unless
  /// JETSIM_DEBUG_CHECKS is enabled.
  void ReleaseOwnershipForTest() {
    producer_guard_.Release();
    consumer_guard_.Release();
  }

 private:
  static constexpr size_t kCacheLine = 64;

  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLine) std::atomic<size_t> head_{0};  // next write position
  alignas(kCacheLine) size_t cached_tail_{0};        // producer's view of tail_
  alignas(kCacheLine) std::atomic<size_t> tail_{0};  // next read position
  alignas(kCacheLine) size_t cached_head_{0};        // consumer's view of head_

  // Debug-only single-producer/single-consumer discipline checks; empty
  // types in release builds. Kept off the index cache lines.
  alignas(kCacheLine) debug::ThreadOwnershipGuard producer_guard_;
  debug::ThreadOwnershipGuard consumer_guard_;
};

}  // namespace jet

#endif  // JETSIM_COMMON_SPSC_QUEUE_H_
