#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace jet {

Histogram::Histogram(int64_t max_value) : max_value_(std::max<int64_t>(max_value, 1)) {
  buckets_.assign(static_cast<size_t>(BucketCountFor(max_value_)), 0);
}

int Histogram::BucketIndexOf(int64_t value, int64_t max_value) {
  if (value < 0) value = 0;
  if (value > max_value) value = max_value;
  auto v = static_cast<uint64_t>(value);
  if (v < kSubBucketCount) return static_cast<int>(v);
  int exponent = 63 - std::countl_zero(v);
  int block = exponent - kSubBucketBits + 1;
  int sub = static_cast<int>((v >> (exponent - kSubBucketBits)) - kSubBucketCount);
  return block * kSubBucketCount + sub;
}

int64_t Histogram::BucketUpperEdgeOf(int index) {
  if (index < kSubBucketCount) return index;
  int block = index / kSubBucketCount;
  int sub = index % kSubBucketCount;
  int64_t width = int64_t{1} << (block - 1);
  int64_t lower = static_cast<int64_t>(kSubBucketCount + sub) << (block - 1);
  return lower + width - 1;
}

void Histogram::RecordN(int64_t value, int64_t count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  if (value > max_value_) value = max_value_;
  buckets_[static_cast<size_t>(BucketIndexFor(value))] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

bool Histogram::Merge(const Histogram& other) {
  if (max_value_ != other.max_value_) return false;
  if (other.count_ == 0) return true;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

bool Histogram::MergeBucketCounts(const int64_t* counts, size_t n, int64_t min_value,
                                  int64_t max_value_seen, double sum) {
  if (n != buckets_.size()) return false;
  int64_t added = 0;
  for (size_t i = 0; i < n; ++i) {
    buckets_[i] += counts[i];
    added += counts[i];
  }
  if (added == 0) return true;
  min_value = std::clamp<int64_t>(min_value, 0, max_value_);
  max_value_seen = std::clamp<int64_t>(max_value_seen, 0, max_value_);
  if (count_ == 0) {
    min_ = min_value;
    max_ = max_value_seen;
  } else {
    min_ = std::min(min_, min_value);
    max_ = std::max(max_, max_value_seen);
  }
  count_ += added;
  sum_ += sum;
  return true;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0;
  return sum_ / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  // The extremes are tracked exactly; bucket rounding only applies to the
  // quantiles in between.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the observation we want (1-based, rounded up).
  auto target = static_cast<int64_t>(q * static_cast<double>(count_) + 0.5);
  if (target < 1) target = 1;
  if (target > count_) target = count_;
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpperEdgeOf(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary(double unit, const std::string& unit_name) const {
  char buf[256];
  auto scale = [&](int64_t v) { return static_cast<double>(v) / (unit == 0 ? 1.0 : unit); };
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.3f%s p50=%.3f%s p90=%.3f%s p99=%.3f%s p99.9=%.3f%s "
                "p99.99=%.3f%s max=%.3f%s",
                static_cast<long long>(count_), Mean() / (unit == 0 ? 1.0 : unit),
                unit_name.c_str(), scale(ValueAtQuantile(0.50)), unit_name.c_str(),
                scale(ValueAtQuantile(0.90)), unit_name.c_str(),
                scale(ValueAtQuantile(0.99)), unit_name.c_str(),
                scale(ValueAtQuantile(0.999)), unit_name.c_str(),
                scale(ValueAtQuantile(0.9999)), unit_name.c_str(), scale(max()),
                unit_name.c_str());
  return std::string(buf);
}

std::vector<std::pair<double, int64_t>> Histogram::PercentileCurve() const {
  static constexpr double kQuantiles[] = {0.0,   0.10,  0.25,  0.50,   0.70,   0.75,
                                          0.80,  0.85,  0.90,  0.95,   0.99,   0.995,
                                          0.999, 0.9995, 0.9999, 1.0};
  std::vector<std::pair<double, int64_t>> curve;
  curve.reserve(std::size(kQuantiles));
  for (double q : kQuantiles) {
    curve.emplace_back(q, q >= 1.0 ? max() : ValueAtQuantile(q));
  }
  return curve;
}

}  // namespace jet
