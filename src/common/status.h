#ifndef JETSIM_COMMON_STATUS_H_
#define JETSIM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace jet {

/// Canonical error codes used across the jetsim library.
///
/// jetsim does not use C++ exceptions; all fallible operations return a
/// `Status` or a `Result<T>`.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,
  kAborted = 9,
  kResourceExhausted = 10,
  kCancelled = 11,
  kTimedOut = 12,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message. `Status` is cheap to copy for the OK case and heap-allocates
/// only the error message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error code and message. Passing
  /// `StatusCode::kOk` yields an OK status and drops the message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  /// Returns true iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// Returns the error code (kOk when `ok()`).
  StatusCode code() const { return code_; }

  /// Returns the error message (empty when `ok()`).
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience factories mirroring absl's.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);
Status TimedOutError(std::string message);

/// A value-or-error holder, modeled after absl::StatusOr<T>.
///
/// Either holds a `T` (and an OK status) or an error `Status`. Accessing the
/// value of an errored `Result` aborts in debug builds and is undefined in
/// release builds; callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  /// Returns true iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// Returns the status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define JET_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::jet::Status jet_status_tmp_ = (expr);      \
    if (!jet_status_tmp_.ok()) return jet_status_tmp_; \
  } while (false)

}  // namespace jet

#endif  // JETSIM_COMMON_STATUS_H_
