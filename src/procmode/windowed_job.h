#ifndef JETSIM_PROCMODE_WINDOWED_JOB_H_
#define JETSIM_PROCMODE_WINDOWED_JOB_H_

#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "core/dag.h"
#include "core/processors_window.h"

namespace jet::procmode {

/// Parameters of the standard process-mode job (the Q5-shaped exactly-once
/// windowed count the in-process chaos fixture runs): rate-controlled
/// replayable source -> keyed accumulate -> distributed partitioned
/// combine -> sink.
struct WindowedJobParams {
  double events_per_second = 20'000;
  Nanos duration = 1'200 * kNanosPerMilli;
  int64_t key_count = 16;
  Nanos window_size = 50 * kNanosPerMilli;
  Nanos watermark_interval = 5 * kNanosPerMilli;
};

/// Called by a sink instance (on a cooperative worker) for every window
/// result it receives. Implementations must be bounded and thread-safe:
/// process mode binds this to a control-socket SendFrame.
using ResultEmitFn = std::function<void(const core::WindowResult<int64_t>&)>;

/// Name of the only registered job shape. StartJob carries a job name so
/// the registry can grow without a protocol change; an unknown name is an
/// error on the member.
inline constexpr char kWindowedCountJobName[] = "windowed_count";

/// Number of vertices in the windowed-count DAG (the coordinator iterates
/// vertex ids when reading a snapshot for restore shipping).
inline constexpr int32_t kWindowedCountVertexCount = 4;

/// Builds `name`'s DAG into `*dag` (currently only "windowed_count").
/// The accumulate->combine edge is the DAG's only distributed edge, so the
/// only payload that ever crosses a process boundary is KeyedFrame<int64_t>
/// — covered by the wire codec's typed-item encoding. `dag` must be empty.
Status BuildJobDag(const std::string& name, const WindowedJobParams& params,
                   ResultEmitFn emit, core::Dag* dag);

/// Events the source emits over its full lifetime (mirrors
/// GeneratorSourceP's truncated-period schedule).
int64_t WindowedJobExpectedTotal(const WindowedJobParams& params);

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_WINDOWED_JOB_H_
