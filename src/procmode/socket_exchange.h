#ifndef JETSIM_PROCMODE_SOCKET_EXCHANGE_H_
#define JETSIM_PROCMODE_SOCKET_EXCHANGE_H_

#include <memory>
#include <vector>

#include "net/exchange.h"
#include "net/socket_transport.h"
#include "net/wire_format.h"

namespace jet::procmode {

/// ExchangeRegistry whose channels ride real sockets: MakeLink returns a
/// FrameLink that encodes each data/ack frame with the wire codec and
/// ships it on the pre-established connection to the peer member hosting
/// the other end of the hop. The §3.3 flow-control protocol is untouched —
/// the sender still stops at its send limit, the receiver still acks new
/// limits; only the transport under the frames changed.
///
/// Each member of an attempt builds one registry. A channel (edge, from,
/// to) exists on *both* endpoint members, each side using only its half:
/// the sender member calls link->SendData and reads channel->flow (advanced
/// by inbound acks), the receiver member drains channel->wire (filled by
/// inbound data frames) and calls link->SendAck.
class SocketExchangeRegistry final : public net::ExchangeRegistry {
 public:
  /// `peer_conns[n]` is this attempt's outbound connection to the member
  /// hosting plan-local node `n` (nullptr at the member's own slot — no
  /// hop connects a node to itself). Connections must be Started and must
  /// outlive the registry. `bus` is a member-local in-memory Network used
  /// only for channel-id allocation.
  SocketExchangeRegistry(net::Network* bus, net::ExchangeOptions options, int32_t my_node,
                         std::vector<std::shared_ptr<net::SocketConnection>> peer_conns)
      : net::ExchangeRegistry(bus, {}, options),
        my_node_(my_node),
        peer_conns_(std::move(peer_conns)) {}

  /// Routes one decoded inbound frame into this registry's channels:
  /// data frames push into the hop's WireBuffer (the hop's receiver runs
  /// on this member), acks advance the hop's SenderFlowState (its sender
  /// runs here). Frames from another epoch — stragglers of a torn-down
  /// attempt — are dropped. Called on a data connection's I/O thread.
  void RouteInbound(net::DecodedFrame&& frame);

  /// Stragglers dropped by the epoch filter (tests).
  int64_t stale_frames_dropped() const {
    return stale_frames_dropped_.load(std::memory_order_relaxed);
  }

 protected:
  std::shared_ptr<net::FrameLink> MakeLink(const net::ExchangeChannel& channel,
                                           int32_t edge_index, int32_t from_node,
                                           int32_t to_node) override;

 private:
  int32_t my_node_;
  std::vector<std::shared_ptr<net::SocketConnection>> peer_conns_;
  std::atomic<int64_t> stale_frames_dropped_{0};
};

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_SOCKET_EXCHANGE_H_
