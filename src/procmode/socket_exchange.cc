#include "procmode/socket_exchange.h"

#include "common/logging.h"

namespace jet::procmode {
namespace {

/// One directed hop over sockets. SendData goes to the member hosting the
/// hop's receiver; SendAck goes back to the member hosting its sender. A
/// peer that died mid-attempt surfaces as SendFrame counting the frame
/// dropped — the tasklet keeps running and the control plane handles the
/// death (the §4.4 recovery path), so send failures are not errors here.
class SocketFrameLink final : public net::FrameLink {
 public:
  SocketFrameLink(net::FrameHeader header, std::shared_ptr<net::SocketConnection> data_conn,
                  std::shared_ptr<net::SocketConnection> ack_conn)
      : header_(header), data_conn_(std::move(data_conn)), ack_conn_(std::move(ack_conn)) {}

  void SendData(std::vector<core::Item>&& frame) override {
    if (data_conn_ == nullptr) return;
    BytesWriter w;
    Status s = net::EncodeDataFrame(header_, frame, &w);
    if (!s.ok()) {
      // Unlike the in-process link there is no in-memory fallback across a
      // process boundary: a payload without a codec cannot leave this
      // process. The standard jobs only ship codec-covered types; anything
      // else is a job-definition bug worth shouting about.
      JET_LOG(kError) << "dropping unencodable exchange frame: " << s.ToString();
      return;
    }
    (void)data_conn_->SendFrame(w.Take());
  }

  void SendAck(int64_t new_limit) override {
    if (ack_conn_ == nullptr) return;
    BytesWriter w;
    JET_DCHECK_OK(net::EncodeAckFrame(header_, new_limit, &w));
    (void)ack_conn_->SendFrame(w.Take());
  }

 private:
  net::FrameHeader header_;
  std::shared_ptr<net::SocketConnection> data_conn_;
  std::shared_ptr<net::SocketConnection> ack_conn_;
};

}  // namespace

std::shared_ptr<net::FrameLink> SocketExchangeRegistry::MakeLink(
    const net::ExchangeChannel& channel, int32_t edge_index, int32_t from_node,
    int32_t to_node) {
  (void)channel;
  net::FrameHeader header;
  header.edge_index = edge_index;
  header.from_node = from_node;
  header.to_node = to_node;
  header.epoch = options().epoch;
  auto conn_for = [this](int32_t node) -> std::shared_ptr<net::SocketConnection> {
    if (node == my_node_ || node < 0 ||
        static_cast<size_t>(node) >= peer_conns_.size()) {
      return nullptr;
    }
    return peer_conns_[static_cast<size_t>(node)];
  };
  // Data flows toward the receiver's member, acks back toward the
  // sender's. On each member one of the two is the member itself (nullptr
  // connection) — that direction is never exercised on this side.
  return std::make_shared<SocketFrameLink>(header, conn_for(to_node), conn_for(from_node));
}

void SocketExchangeRegistry::RouteInbound(net::DecodedFrame&& frame) {
  if (frame.header.epoch != options().epoch) {
    // jet-verify: allow(single-writer) — monotonic stats counter; fetch_add
    // is a full RMW so concurrent I/O threads never lose increments, and
    // readers only inspect the total for diagnostics.
    stale_frames_dropped_.fetch_add(1, std::memory_order_relaxed);

    return;
  }
  auto channel = GetOrCreate(frame.header.edge_index, frame.header.from_node,
                             frame.header.to_node);
  switch (frame.header.type) {
    case net::FrameType::kData:
      channel->wire->Push(std::move(frame.items));
      break;
    case net::FrameType::kAck:
      channel->flow->OnAck(frame.ack_limit);
      break;
    case net::FrameType::kControl:
      // Control messages belong on the control socket; one arriving on a
      // data connection is a peer bug, not a crash.
      JET_LOG(kWarn) << "control frame on data connection; dropped";
      break;
  }
}

}  // namespace jet::procmode
