#include "procmode/process_cluster.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>

#include "common/logging.h"
#include "imdg/partition.h"
#include "procmode/process_member.h"

namespace jet::procmode {

using std::chrono::milliseconds;

namespace {

constexpr Nanos kSupervisorTick = 2 * kNanosPerMilli;
constexpr Nanos kGracefulExitTimeout = 10 * kNanosPerSecond;

Nanos Now() { return SharedMonotonicClock::RawNow(); }

}  // namespace

ProcessCluster::ProcessCluster(Options options)
    : options_(std::move(options)), grid_(/*backup_count=*/0), store_(&grid_) {
  // The coordinator is the grid's only member: snapshot durability in
  // process mode means "reached the coordinator's store", which the
  // control-socket FIFO protocol makes equivalent to commit-safety.
  JET_DCHECK_OK(grid_.AddMember(0).status());
}

ProcessCluster::~ProcessCluster() { Shutdown(); }

Status ProcessCluster::Start() {
  ::mkdir(options_.work_dir.c_str(), 0755);
  const std::string control_path = options_.work_dir + "/control.sock";
  auto server = net::SocketServer::ListenUnix(control_path);
  JET_RETURN_IF_ERROR(server.status());
  control_server_ = std::move(server.value());
  control_server_->Start([this](std::unique_ptr<net::SocketConnection> conn) {
    std::shared_ptr<net::SocketConnection> shared = std::move(conn);
    const net::SocketConnection* id = shared.get();
    // Register the connection before its I/O thread starts: the member's
    // Hello can arrive the instant Start() returns, and binding it to a
    // Member requires the conn to already be in pending_conns_.
    {
      jet::MutexLock lock(mu_);
      pending_conns_.push_back(shared);
    }
    shared->Start(
        [this, id](Bytes frame) {
          Event e;
          e.conn = id;
          auto msg = DecodeControlMessage(frame);
          if (!msg.ok()) {
            JET_LOG(kError) << "bad control message: " << msg.status().ToString();
            return;
          }
          e.msg = std::move(msg.value());
          jet::MutexLock lock(mu_);
          events_.push_back(std::move(e));
          cv_.NotifyAll();
        },
        [this, id]() {
          Event e;
          e.conn = id;
          e.closed = true;
          jet::MutexLock lock(mu_);
          events_.push_back(std::move(e));
          cv_.NotifyAll();
        });
  });

  {
    jet::MutexLock lock(mu_);
    members_.resize(static_cast<size_t>(options_.initial_members));
    for (int32_t i = 0; i < options_.initial_members; ++i) {
      members_[static_cast<size_t>(i)].index = i;
      JET_RETURN_IF_ERROR(SpawnMember(i));
    }
    phase_ = Phase::kIdle;
  }
  supervisor_ = std::thread([this]() { SupervisorLoop(); });

  // Await every member's Hello.
  const Nanos deadline = Now() + options_.bring_up_timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    bool all = true;
    for (const Member& m : members_) {
      if (!m.hello) all = false;
    }
    if (all) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("members did not all say Hello");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

Status ProcessCluster::SpawnMember(int32_t index) {
  const std::string control_path = options_.work_dir + "/control.sock";
  const std::string index_str = std::to_string(index);
  const pid_t pid = ::fork();
  if (pid < 0) return InternalError("fork failed");
  if (pid == 0) {
    // Child: become the member process.
    ::execl(options_.member_binary.c_str(), options_.member_binary.c_str(),
            control_path.c_str(), index_str.c_str(), options_.work_dir.c_str(),
            static_cast<char*>(nullptr));
    // Only reached when exec failed; _exit (not exit) — this child must not
    // run the coordinator's atexit handlers.
    ::_exit(127);
  }
  Member& m = members_[static_cast<size_t>(index)];
  m.pid = pid;
  m.alive = true;
  return Status::OK();
}

Status ProcessCluster::SubmitWindowedJob() {
  jet::MutexLock lock(mu_);
  if (phase_ != Phase::kIdle) return FailedPreconditionError("cluster not idle");
  epoch_ = 1;
  StartAttempt(std::nullopt);
  return Status::OK();
}

Status ProcessCluster::WaitForCommittedSnapshot(int64_t min_snapshot_id, Nanos timeout) {
  const Nanos deadline = Now() + timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    if (last_committed_ >= min_snapshot_id) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    if (phase_ == Phase::kDone) {
      return FailedPreconditionError("job finished before the snapshot committed");
    }
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("no committed snapshot in time");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

Status ProcessCluster::KillMember(int32_t member_index) {
  pid_t pid = -1;
  {
    jet::MutexLock lock(mu_);
    if (member_index < 0 || static_cast<size_t>(member_index) >= members_.size()) {
      return InvalidArgumentError("no such member");
    }
    Member& m = members_[static_cast<size_t>(member_index)];
    if (!m.alive) return FailedPreconditionError("member already dead");
    pid = m.pid;
  }
  if (::kill(pid, SIGKILL) != 0) return InternalError("kill failed");
  // Death is observed through the control connection's EOF — the same
  // signal a real crash produces. Nothing else to do here.
  return Status::OK();
}

Status ProcessCluster::AwaitJobCompletion(Nanos timeout) {
  const Nanos deadline = Now() + timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    if (phase_ == Phase::kDone) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("job did not complete in time");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

void ProcessCluster::Shutdown() {
  std::vector<std::pair<int32_t, pid_t>> children;
  {
    jet::MutexLock lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
    ProcMsg bye;
    bye.type = ProcMsgType::kShutdown;
    for (Member& m : members_) {
      if (m.alive && m.conn != nullptr) (void)m.conn->SendFrame(EncodeControlMessage(bye));
      if (m.alive && m.pid > 0) children.emplace_back(m.index, m.pid);
    }
  }

  // Reap children: graceful window first, then SIGKILL stragglers.
  const Nanos deadline = Now() + kGracefulExitTimeout;
  for (auto& [index, pid] : children) {
    for (;;) {
      int wstatus = 0;
      const pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
      if (r == pid || r < 0) break;
      if (Now() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &wstatus, 0);
        break;
      }
      std::this_thread::sleep_for(milliseconds(5));
    }
  }

  {
    jet::MutexLock lock(mu_);
    supervisor_exit_ = true;
    cv_.NotifyAll();
  }
  if (supervisor_.joinable()) supervisor_.join();
  if (control_server_ != nullptr) control_server_->Stop();

  std::vector<std::shared_ptr<net::SocketConnection>> conns;
  {
    jet::MutexLock lock(mu_);
    for (Member& m : members_) {
      if (m.conn != nullptr) conns.push_back(std::move(m.conn));
    }
    for (auto& c : pending_conns_) conns.push_back(std::move(c));
    pending_conns_.clear();
  }
  for (auto& c : conns) c->Close();
}

Result<int64_t> ProcessCluster::DistinctTotal() const {
  jet::MutexLock lock(mu_);
  JET_RETURN_IF_ERROR(result_conflict_);
  int64_t total = 0;
  for (const auto& [key, count] : results_) total += count;
  return total;
}

Status ProcessCluster::VerifyExactlyOnce() const {
  auto total = DistinctTotal();
  JET_RETURN_IF_ERROR(total.status());
  const int64_t expected = expected_total();
  if (total.value() != expected) {
    return InternalError("exactly-once violated: distinct result total " +
                         std::to_string(total.value()) + " != expected " +
                         std::to_string(expected));
  }
  return Status::OK();
}

int64_t ProcessCluster::attempts() const {
  jet::MutexLock lock(mu_);
  return epoch_;
}

int64_t ProcessCluster::last_committed_snapshot() const {
  jet::MutexLock lock(mu_);
  return last_committed_;
}

int32_t ProcessCluster::live_member_count() const {
  jet::MutexLock lock(mu_);
  int32_t n = 0;
  for (const Member& m : members_) {
    if (m.alive) ++n;
  }
  return n;
}

void ProcessCluster::SupervisorLoop() {
  jet::MutexLock lock(mu_);
  while (!supervisor_exit_) {
    cv_.WaitFor(mu_, milliseconds(kSupervisorTick / kNanosPerMilli),
                [this]() JET_REQUIRES(mu_) { return !events_.empty() || supervisor_exit_; });
    while (!events_.empty()) {
      Event e = std::move(events_.front());
      events_.pop_front();
      HandleEvent(std::move(e));
    }
    TimerPass();
  }
}

int32_t ProcessCluster::MemberIndexOf(const net::SocketConnection* conn) {
  for (const Member& m : members_) {
    if (m.conn.get() == conn) return m.index;
  }
  return -1;
}

void ProcessCluster::HandleEvent(Event e) {
  if (e.closed) {
    const int32_t index = MemberIndexOf(e.conn);
    if (index < 0) {
      // A connection that never completed Hello; just forget it.
      for (auto it = pending_conns_.begin(); it != pending_conns_.end(); ++it) {
        if (it->get() == e.conn) {
          pending_conns_.erase(it);
          break;
        }
      }
      return;
    }
    if (!shutting_down_) OnMemberDied(index);
    return;
  }

  const ProcMsg& msg = e.msg;
  switch (msg.type) {
    case ProcMsgType::kHello: {
      if (msg.member_index < 0 ||
          static_cast<size_t>(msg.member_index) >= members_.size()) {
        JET_LOG(kError) << "Hello from unknown member " << msg.member_index;
        return;
      }
      Member& m = members_[static_cast<size_t>(msg.member_index)];
      for (auto it = pending_conns_.begin(); it != pending_conns_.end(); ++it) {
        if (it->get() == e.conn) {
          m.conn = std::move(*it);
          pending_conns_.erase(it);
          break;
        }
      }
      if (m.conn == nullptr) {
        // Hello from a connection we no longer hold (already closed and
        // swept); a member is only usable once its conn is bound.
        JET_LOG(kError) << "Hello from member " << msg.member_index
                        << " on an unknown connection";
        return;
      }
      m.hello = true;
      m.data_path = msg.data_path;
      cv_.NotifyAll();
      return;
    }
    case ProcMsgType::kReady: {
      if (msg.epoch != epoch_ || phase_ != Phase::kStarting) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].ready = true;
      bool all = true;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && !m.ready) all = false;
      }
      if (!all) return;
      // Every member's epoch-N exchange registry is installed before any
      // epoch-N frame can flow — the Ready/Go barrier.
      ProcMsg go;
      go.type = ProcMsgType::kGo;
      go.epoch = epoch_;
      Broadcast(go);
      phase_ = Phase::kRunning;
      last_snapshot_done_ = Now();
      return;
    }
    case ProcMsgType::kSnapshotEntry: {
      // Accepted regardless of epoch: stragglers of a dying attempt belong
      // to an uncommitted snapshot that ClearInFlight sweeps after all
      // survivors reported stopped — and that sweep is ordered after every
      // straggler by the control sockets' FIFO ordering.
      imdg::SnapshotStateEntry entry;
      entry.vertex_id = msg.vertex_id;
      entry.writer_index = msg.writer_index;
      entry.key_hash = msg.key_hash;
      entry.key = msg.key;
      entry.value = msg.value;
      Status s = store_.WriteEntry(options_.job_id, msg.snapshot_id, entry);
      if (!s.ok()) JET_LOG(kError) << "snapshot entry write failed: " << s.ToString();
      return;
    }
    case ProcMsgType::kSnapshotAck: {
      if (msg.epoch != epoch_ || msg.snapshot_id != in_flight_snapshot_) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].acked = true;
      bool all = true;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && !m.acked) all = false;
      }
      if (!all) return;
      // Every participant acked; the FIFO ordering guarantees all their
      // state entries already hit the store (proc_proto.h).
      Status s = store_.Commit(options_.job_id, in_flight_snapshot_);
      if (!s.ok()) {
        JET_LOG(kError) << "snapshot commit failed: " << s.ToString();
        store_.Abort(options_.job_id, in_flight_snapshot_);
      } else {
        last_committed_ = in_flight_snapshot_;
        ProcMsg committed;
        committed.type = ProcMsgType::kSnapshotCommitted;
        committed.epoch = epoch_;
        committed.snapshot_id = in_flight_snapshot_;
        Broadcast(committed);
      }
      in_flight_snapshot_ = 0;
      last_snapshot_done_ = Now();
      cv_.NotifyAll();
      return;
    }
    case ProcMsgType::kSinkResult: {
      // Any-epoch: a replayed window must agree with its first emission —
      // that agreement *is* the exactly-once property under test.
      const auto key = std::make_pair(msg.result_key, msg.window_end);
      auto [it, inserted] = results_.emplace(key, msg.result_value);
      if (!inserted && it->second != msg.result_value) {
        result_conflict_ = InternalError(
            "conflicting results for key " + std::to_string(msg.result_key) +
            " window_end " + std::to_string(msg.window_end) + ": " +
            std::to_string(it->second) + " vs " + std::to_string(msg.result_value));
      }
      return;
    }
    case ProcMsgType::kAttemptDone: {
      if (msg.epoch != epoch_ || phase_ != Phase::kRunning) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].done = true;
      bool all = true;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && !m.done) all = false;
      }
      if (all) {
        phase_ = Phase::kDone;
        cv_.NotifyAll();
      }
      return;
    }
    case ProcMsgType::kAttemptStopped: {
      if (phase_ != Phase::kRecovering || msg.epoch != epoch_) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].stopped = true;
      MaybeFinishRecovery();
      return;
    }
    default:
      JET_LOG(kWarn) << "coordinator got unexpected message type "
                     << static_cast<int>(msg.type);
      return;
  }
}

void ProcessCluster::TimerPass() {
  if (shutting_down_) return;
  const Nanos now = Now();
  if (phase_ == Phase::kRunning && in_flight_snapshot_ == 0 &&
      now - last_snapshot_done_ >= options_.snapshot_interval) {
    in_flight_snapshot_ = next_snapshot_id_++;
    snapshot_request_time_ = now;
    for (Member& m : members_) m.acked = false;
    ProcMsg req;
    req.type = ProcMsgType::kSnapshotRequest;
    req.epoch = epoch_;
    req.snapshot_id = in_flight_snapshot_;
    Broadcast(req);
  }
  if (in_flight_snapshot_ != 0 &&
      now - snapshot_request_time_ > options_.snapshot_ack_timeout) {
    JET_LOG(kWarn) << "snapshot " << in_flight_snapshot_ << " timed out; aborting";
    AbortInFlightSnapshot();
    last_snapshot_done_ = now;
  }
}

void ProcessCluster::AbortInFlightSnapshot() {
  if (in_flight_snapshot_ == 0) return;
  store_.Abort(options_.job_id, in_flight_snapshot_);
  ProcMsg aborted;
  aborted.type = ProcMsgType::kSnapshotAborted;
  aborted.epoch = epoch_;
  aborted.snapshot_id = in_flight_snapshot_;
  Broadcast(aborted);
  in_flight_snapshot_ = 0;
}

void ProcessCluster::OnMemberDied(int32_t index) {
  Member& dead = members_[static_cast<size_t>(index)];
  JET_LOG(kWarn) << "member " << index << " (pid " << dead.pid << ") died";
  dead.alive = false;
  dead.conn = nullptr;
  if (dead.pid > 0) {
    int wstatus = 0;
    ::waitpid(dead.pid, &wstatus, 0);  // already dead: immediate
  }
  if (phase_ == Phase::kDone || phase_ == Phase::kFailed || phase_ == Phase::kInit ||
      phase_ == Phase::kIdle) {
    return;
  }
  const bool was_participant = dead.node_id >= 0;
  dead.node_id = -1;
  if (!was_participant) return;

  int32_t survivors = 0;
  for (const Member& m : members_) {
    if (m.alive && m.node_id >= 0) ++survivors;
  }
  if (survivors == 0) {
    Fail("all members died");
    return;
  }

  if (phase_ == Phase::kRecovering) {
    // A second death while stopping: the dead member can no longer report
    // AttemptStopped; re-evaluate with the smaller survivor set.
    MaybeFinishRecovery();
    return;
  }

  // §4.4 recovery: abandon the in-flight snapshot, stop the attempt on
  // every survivor, and only then sweep + restore — the AttemptStopped
  // barrier drains everything the old attempt ever put on the wire.
  AbortInFlightSnapshot();
  phase_ = Phase::kRecovering;
  for (Member& m : members_) m.stopped = false;
  ProcMsg stop;
  stop.type = ProcMsgType::kStopAttempt;
  stop.epoch = epoch_;
  Broadcast(stop);
}

void ProcessCluster::MaybeFinishRecovery() {
  for (const Member& m : members_) {
    if (m.alive && m.node_id >= 0 && !m.stopped) return;
  }
  store_.ClearInFlight(options_.job_id);
  auto restore = store_.LastCommitted(options_.job_id);
  if (!restore.ok()) {
    Fail("cannot read last committed snapshot: " + restore.status().ToString());
    return;
  }
  epoch_ += 1;
  StartAttempt(restore.value());
}

void ProcessCluster::StartAttempt(std::optional<imdg::SnapshotId> restore_snapshot) {
  // Plan-local node ids: rank among live members, in member-index order.
  std::vector<Member*> participants;
  for (Member& m : members_) {
    m.ready = false;
    m.done = false;
    m.acked = false;
    m.stopped = false;
    m.node_id = -1;
    if (m.alive && m.hello) {
      m.node_id = static_cast<int32_t>(participants.size());
      participants.push_back(&m);
    }
  }
  if (participants.empty()) {
    Fail("no live members to start the job on");
    return;
  }
  std::vector<std::string> data_paths;
  data_paths.reserve(participants.size());
  for (const Member* m : participants) data_paths.push_back(m->data_path);

  // Restore state is shipped whole to every member; each member routes the
  // entries to the processor instances it hosts (key ownership is a pure
  // function of key_hash, node_id and node_count).
  std::vector<ProcMsg> restore_msgs;
  if (restore_snapshot.has_value()) {
    for (int32_t vertex = 0; vertex < kWindowedCountVertexCount; ++vertex) {
      for (int32_t p = 0; p < imdg::kDefaultPartitionCount; ++p) {
        Status s = store_.ReadEntries(
            options_.job_id, *restore_snapshot, vertex, p,
            [this, vertex, &restore_msgs](imdg::SnapshotStateEntry entry) {
              ProcMsg m;
              m.type = ProcMsgType::kRestoreEntry;
              m.epoch = epoch_;
              m.snapshot_id = 0;  // identity irrelevant on restore
              m.vertex_id = vertex;
              m.writer_index = entry.writer_index;
              m.key_hash = entry.key_hash;
              m.key = std::move(entry.key);
              m.value = std::move(entry.value);
              restore_msgs.push_back(std::move(m));
            });
        if (!s.ok()) {
          Fail("restore read failed: " + s.ToString());
          return;
        }
      }
    }
    JET_LOG(kWarn) << "attempt " << epoch_ << ": restoring " << restore_msgs.size()
                   << " entries from snapshot " << *restore_snapshot;
  }

  ProcMsg start;
  start.type = ProcMsgType::kStartJob;
  start.epoch = epoch_;
  start.job_name = kWindowedCountJobName;
  start.node_count = static_cast<int32_t>(participants.size());
  start.clock_anchor = SharedMonotonicClock::RawNow();
  start.threads = options_.threads_per_member;
  start.events_per_second = options_.job_params.events_per_second;
  start.duration = options_.job_params.duration;
  start.key_count = options_.job_params.key_count;
  start.window_size = options_.job_params.window_size;
  start.watermark_interval = options_.job_params.watermark_interval;
  start.restore_count = static_cast<int64_t>(restore_msgs.size());
  start.data_paths = data_paths;

  for (Member* m : participants) {
    start.node_id = m->node_id;
    (void)m->conn->SendFrame(EncodeControlMessage(start));
    for (const ProcMsg& entry : restore_msgs) {
      (void)m->conn->SendFrame(EncodeControlMessage(entry));
    }
  }
  in_flight_snapshot_ = 0;
  phase_ = Phase::kStarting;
}

void ProcessCluster::Broadcast(const ProcMsg& msg) {
  const Bytes frame = EncodeControlMessage(msg);
  for (Member& m : members_) {
    if (m.alive && m.conn != nullptr) (void)m.conn->SendFrame(frame);
  }
}

void ProcessCluster::Fail(const std::string& why) {
  JET_LOG(kError) << "process cluster failed: " << why;
  phase_ = Phase::kFailed;
  failure_ = why;
  cv_.NotifyAll();
}

}  // namespace jet::procmode
