#include "procmode/process_cluster.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "imdg/partition.h"
#include "obs/exporters.h"
#include "procmode/process_member.h"

namespace jet::procmode {

using std::chrono::milliseconds;

namespace {

constexpr Nanos kSupervisorTick = 2 * kNanosPerMilli;

Nanos Now() { return SharedMonotonicClock::RawNow(); }

obs::MetricTags TagsFor(imdg::JobId job_id) {
  obs::MetricTags tags;
  tags.job = static_cast<int64_t>(job_id);
  return tags;
}

/// Reaps `pid` once. blocking=false is a single WNOHANG probe. Returns true
/// when the child is gone: reaped here, or ECHILD (already reaped — e.g.
/// the reap scan raced the EOF path). EINTR retries; a child that is still
/// running returns false.
bool TryReap(pid_t pid, bool blocking) {
  for (;;) {
    int wstatus = 0;
    const pid_t r = ::waitpid(pid, &wstatus, blocking ? 0 : WNOHANG);
    if (r == pid) return true;
    if (r == 0) return false;  // WNOHANG: still running
    if (errno == EINTR) continue;
    if (errno == ECHILD) return true;  // no such child: already reaped
    JET_LOG(kError) << "waitpid(" << pid << ") failed: " << std::strerror(errno);
    return true;  // unexpected errno — nothing further to wait for
  }
}

}  // namespace

ProcessCluster::ProcessCluster(Options options)
    : options_(std::move(options)),
      grid_(/*backup_count=*/0),
      store_(&grid_),
      registry_(TagsFor(options_.job_id)) {
  // The coordinator is the grid's only member: snapshot durability in
  // process mode means "reached the coordinator's store" — and, with
  // replication on, "mirrored in one member process too".
  JET_DCHECK_OK(grid_.AddMember(0).status());
  respawn_backoff_ = std::make_unique<RetryBackoff>(
      options_.respawn.backoff, static_cast<uint64_t>(options_.job_id));
  respawns_counter_ = registry_.GetCounter("proc.respawns");
  heartbeats_counter_ = registry_.GetCounter("proc.heartbeats");
  replica_entries_counter_ = registry_.GetCounter("proc.replica_entries");
  replica_rejects_counter_ = registry_.GetCounter("proc.replica_rejects");
  backoff_gauge_ = registry_.GetGauge("proc.backoff_nanos");
  budget_gauge_ = registry_.GetGauge("proc.retry_budget_remaining");
  suspected_gauge_ = registry_.GetGauge("proc.suspected_members");
  live_members_gauge_ = registry_.GetGauge("proc.live_members");
  budget_gauge_.Set(options_.respawn.backoff.retry_budget);
}

ProcessCluster::~ProcessCluster() { Shutdown(); }

Status ProcessCluster::Start() {
  ::mkdir(options_.work_dir.c_str(), 0755);
  const std::string control_path = options_.work_dir + "/control.sock";
  auto server = net::SocketServer::ListenUnix(control_path);
  JET_RETURN_IF_ERROR(server.status());
  control_server_ = std::move(server.value());
  control_server_->Start([this](std::unique_ptr<net::SocketConnection> conn) {
    std::shared_ptr<net::SocketConnection> shared = std::move(conn);
    const net::SocketConnection* id = shared.get();
    // Register the connection before its I/O thread starts: the member's
    // Hello can arrive the instant Start() returns, and binding it to a
    // Member requires the conn to already be in pending_conns_.
    {
      jet::MutexLock lock(mu_);
      pending_conns_.push_back(shared);
    }
    shared->Start(
        [this, id](Bytes frame) {
          Event e;
          e.conn = id;
          auto msg = DecodeControlMessage(frame);
          if (!msg.ok()) {
            JET_LOG(kError) << "bad control message: " << msg.status().ToString();
            return;
          }
          e.msg = std::move(msg.value());
          jet::MutexLock lock(mu_);
          events_.push_back(std::move(e));
          cv_.NotifyAll();
        },
        [this, id]() {
          Event e;
          e.conn = id;
          e.closed = true;
          jet::MutexLock lock(mu_);
          events_.push_back(std::move(e));
          cv_.NotifyAll();
        });
  });

  {
    jet::MutexLock lock(mu_);
    members_.resize(static_cast<size_t>(options_.initial_members));
    for (int32_t i = 0; i < options_.initial_members; ++i) {
      members_[static_cast<size_t>(i)].index = i;
      JET_RETURN_IF_ERROR(SpawnMember(i));
    }
    phase_ = Phase::kIdle;
  }
  supervisor_ = std::thread([this]() { SupervisorLoop(); });

  // Await every member's Hello. A bring-up death fails fast (when respawn
  // is off) or is healed by a respawn (when on) — no 30 s stall either way.
  const Nanos deadline = Now() + options_.bring_up_timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    bool all = true;
    for (const Member& m : members_) {
      if (!m.hello) all = false;
    }
    if (all) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("members did not all say Hello");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

Status ProcessCluster::SpawnMember(int32_t index) {
  const std::string control_path = options_.work_dir + "/control.sock";
  const std::string index_str = std::to_string(index);
  const Nanos hb = options_.liveness.enabled ? options_.liveness.heartbeat_interval : 0;
  const std::string hb_ms_str = std::to_string(hb / kNanosPerMilli);
  const pid_t pid = ::fork();
  if (pid < 0) return InternalError("fork failed");
  if (pid == 0) {
    // Child: become the member process.
    ::execl(options_.member_binary.c_str(), options_.member_binary.c_str(),
            control_path.c_str(), index_str.c_str(), options_.work_dir.c_str(),
            hb_ms_str.c_str(), static_cast<char*>(nullptr));
    // Only reached when exec failed; _exit (not exit) — this child must not
    // run the coordinator's atexit handlers.
    ::_exit(127);
  }
  Member& m = members_[static_cast<size_t>(index)];
  m.pid = pid;
  m.alive = true;
  m.hello = false;
  m.ready = false;
  m.acked = false;
  m.done = false;
  m.stopped = false;
  m.node_id = -1;
  m.suspected = false;
  m.liveness_killed = false;
  m.reaped = false;
  m.respawn_pending = false;
  m.spawn_time = Now();
  m.last_heartbeat = m.spawn_time;
  return Status::OK();
}

Status ProcessCluster::SubmitWindowedJob() {
  jet::MutexLock lock(mu_);
  if (phase_ != Phase::kIdle) return FailedPreconditionError("cluster not idle");
  epoch_ = 1;
  StartAttempt(std::nullopt);
  return Status::OK();
}

Status ProcessCluster::WaitForCommittedSnapshot(int64_t min_snapshot_id, Nanos timeout) {
  const Nanos deadline = Now() + timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    if (last_committed_ >= min_snapshot_id) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    if (phase_ == Phase::kDone) {
      return FailedPreconditionError("job finished before the snapshot committed");
    }
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("no committed snapshot in time");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

Status ProcessCluster::SignalMember(int32_t member_index, int signo, const char* what) {
  pid_t pid = -1;
  {
    jet::MutexLock lock(mu_);
    if (member_index < 0 || static_cast<size_t>(member_index) >= members_.size()) {
      return InvalidArgumentError("no such member");
    }
    Member& m = members_[static_cast<size_t>(member_index)];
    if (!m.alive) return FailedPreconditionError("member already dead");
    pid = m.pid;
  }
  if (::kill(pid, signo) != 0) {
    return InternalError(std::string(what) + " failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status ProcessCluster::KillMember(int32_t member_index) {
  // Death is observed through the control connection's EOF — the same
  // signal a real crash produces. Nothing else to do here.
  return SignalMember(member_index, SIGKILL, "kill(SIGKILL)");
}

Status ProcessCluster::StallMember(int32_t member_index) {
  return SignalMember(member_index, SIGSTOP, "kill(SIGSTOP)");
}

Status ProcessCluster::ResumeMember(int32_t member_index) {
  return SignalMember(member_index, SIGCONT, "kill(SIGCONT)");
}

Status ProcessCluster::WaitForFullMembership(Nanos timeout) {
  const Nanos deadline = Now() + timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    bool full = true;
    for (const Member& m : members_) {
      if (!m.alive || !m.hello) full = false;
    }
    if (full) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("cluster did not return to full membership");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

Status ProcessCluster::AwaitJobCompletion(Nanos timeout) {
  const Nanos deadline = Now() + timeout;
  jet::MutexLock lock(mu_);
  for (;;) {
    if (phase_ == Phase::kDone) return Status::OK();
    if (phase_ == Phase::kFailed) return InternalError("cluster failed: " + failure_);
    const Nanos left = deadline - Now();
    if (left <= 0) return TimedOutError("job did not complete in time");
    cv_.WaitFor(mu_, milliseconds(std::max<int64_t>(1, left / kNanosPerMilli)));
  }
}

void ProcessCluster::Shutdown() {
  std::vector<std::pair<int32_t, pid_t>> children;
  {
    jet::MutexLock lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
    ProcMsg bye;
    bye.type = ProcMsgType::kShutdown;
    for (Member& m : members_) {
      if (m.alive && m.conn != nullptr) (void)m.conn->SendFrame(EncodeControlMessage(bye));
      if (m.alive && m.pid > 0 && !m.reaped) children.emplace_back(m.index, m.pid);
      // A SIGSTOP'd member cannot run its Shutdown handler; wake it so the
      // graceful window has a chance before the SIGKILL escalation.
      if (m.alive && m.pid > 0) (void)::kill(m.pid, SIGCONT);
    }
  }

  // Reap children: graceful window first, then escalate to SIGKILL + a
  // blocking reap so Shutdown() can never hang on a wedged member.
  const Nanos deadline = Now() + options_.graceful_exit_timeout;
  for (auto& [index, pid] : children) {
    for (;;) {
      if (TryReap(pid, /*blocking=*/false)) break;
      if (Now() >= deadline) {
        JET_LOG(kWarn) << "member " << index << " (pid " << pid
                       << ") ignored graceful shutdown; sending SIGKILL";
        (void)::kill(pid, SIGKILL);
        TryReap(pid, /*blocking=*/true);
        break;
      }
      std::this_thread::sleep_for(milliseconds(5));
    }
  }

  {
    jet::MutexLock lock(mu_);
    supervisor_exit_ = true;
    cv_.NotifyAll();
  }
  if (supervisor_.joinable()) supervisor_.join();
  if (control_server_ != nullptr) control_server_->Stop();

  std::vector<std::shared_ptr<net::SocketConnection>> conns;
  {
    jet::MutexLock lock(mu_);
    for (Member& m : members_) {
      if (m.conn != nullptr) conns.push_back(std::move(m.conn));
    }
    for (auto& c : pending_conns_) conns.push_back(std::move(c));
    pending_conns_.clear();
    for (auto& c : retired_conns_) conns.push_back(std::move(c));
    retired_conns_.clear();
  }
  for (auto& c : conns) c->Close();
}

Result<int64_t> ProcessCluster::DistinctTotal() const {
  jet::MutexLock lock(mu_);
  JET_RETURN_IF_ERROR(result_conflict_);
  int64_t total = 0;
  for (const auto& [key, count] : results_) total += count;
  return total;
}

Status ProcessCluster::VerifyExactlyOnce() const {
  auto total = DistinctTotal();
  JET_RETURN_IF_ERROR(total.status());
  const int64_t expected = expected_total();
  if (total.value() != expected) {
    return InternalError("exactly-once violated: distinct result total " +
                         std::to_string(total.value()) + " != expected " +
                         std::to_string(expected));
  }
  return Status::OK();
}

int64_t ProcessCluster::attempts() const {
  jet::MutexLock lock(mu_);
  return epoch_;
}

int64_t ProcessCluster::last_committed_snapshot() const {
  jet::MutexLock lock(mu_);
  return last_committed_;
}

int32_t ProcessCluster::live_member_count() const {
  jet::MutexLock lock(mu_);
  int32_t n = 0;
  for (const Member& m : members_) {
    if (m.alive) ++n;
  }
  return n;
}

int32_t ProcessCluster::current_attempt_dop() const {
  jet::MutexLock lock(mu_);
  int32_t n = 0;
  for (const Member& m : members_) {
    if (m.alive && m.node_id >= 0) ++n;
  }
  return n;
}

int64_t ProcessCluster::respawn_count() const {
  jet::MutexLock lock(mu_);
  return respawns_;
}

int32_t ProcessCluster::suspected_member_count() const {
  jet::MutexLock lock(mu_);
  int32_t n = 0;
  for (const Member& m : members_) {
    if (m.alive && m.suspected) ++n;
  }
  return n;
}

int32_t ProcessCluster::retry_budget_remaining() const {
  jet::MutexLock lock(mu_);
  return respawn_backoff_->budget_remaining();
}

int32_t ProcessCluster::snapshot_replica_member() const {
  jet::MutexLock lock(mu_);
  return last_replica_holder_;
}

int64_t ProcessCluster::replica_reject_count() const {
  jet::MutexLock lock(mu_);
  return replica_rejects_;
}

void ProcessCluster::CorruptNextReplicaSeal() {
  jet::MutexLock lock(mu_);
  corrupt_next_seal_ = true;
}

std::string ProcessCluster::failure_message() const {
  jet::MutexLock lock(mu_);
  return failure_;
}

ProcessCluster::Diagnostics ProcessCluster::DiagnosticsDump() const {
  std::vector<obs::MetricSnapshot> metrics = registry_.Snapshot();
  Diagnostics d;
  d.prometheus = obs::RenderPrometheusText(metrics);
  d.json = obs::RenderJson(metrics);
  return d;
}

void ProcessCluster::SupervisorLoop() {
  jet::MutexLock lock(mu_);
  while (!supervisor_exit_) {
    cv_.WaitFor(mu_, milliseconds(kSupervisorTick / kNanosPerMilli),
                [this]() JET_REQUIRES(mu_) { return !events_.empty() || supervisor_exit_; });
    while (!events_.empty()) {
      Event e = std::move(events_.front());
      events_.pop_front();
      HandleEvent(std::move(e));
    }
    TimerPass();
  }
}

int32_t ProcessCluster::MemberIndexOf(const net::SocketConnection* conn) {
  for (const Member& m : members_) {
    if (m.conn.get() == conn) return m.index;
  }
  return -1;
}

void ProcessCluster::RetireConn(Member& m) {
  if (m.conn == nullptr) return;
  retired_conns_.push_back(std::move(m.conn));
  m.conn = nullptr;
}

void ProcessCluster::HandleEvent(Event e) {
  if (e.closed) {
    const int32_t index = MemberIndexOf(e.conn);
    if (index >= 0 && !shutting_down_) OnMemberDied(index);  // retires the conn
    // The close event is the last thing a connection ever emits: release
    // our reference so a future accept can safely reuse the pointer value.
    // (Bound conns of shutting-down members stay put for Shutdown().)
    for (auto it = pending_conns_.begin(); it != pending_conns_.end(); ++it) {
      if (it->get() == e.conn) {
        pending_conns_.erase(it);
        return;
      }
    }
    for (auto it = retired_conns_.begin(); it != retired_conns_.end(); ++it) {
      if (it->get() == e.conn) {
        retired_conns_.erase(it);
        return;
      }
    }
    return;
  }

  // Any inbound traffic is a liveness proof for the sending member.
  {
    const int32_t index = MemberIndexOf(e.conn);
    if (index >= 0) {
      Member& m = members_[static_cast<size_t>(index)];
      m.last_heartbeat = Now();
      m.suspected = false;
    }
  }

  const ProcMsg& msg = e.msg;
  switch (msg.type) {
    case ProcMsgType::kHeartbeat: {
      heartbeats_counter_.Add(1);
      return;
    }
    case ProcMsgType::kHello: {
      if (msg.member_index < 0 ||
          static_cast<size_t>(msg.member_index) >= members_.size()) {
        JET_LOG(kError) << "Hello from unknown member " << msg.member_index;
        return;
      }
      Member& m = members_[static_cast<size_t>(msg.member_index)];
      for (auto it = pending_conns_.begin(); it != pending_conns_.end(); ++it) {
        if (it->get() == e.conn) {
          m.conn = std::move(*it);
          pending_conns_.erase(it);
          break;
        }
      }
      if (m.conn == nullptr) {
        // Hello from a connection we no longer hold (already closed and
        // swept); a member is only usable once its conn is bound.
        JET_LOG(kError) << "Hello from member " << msg.member_index
                        << " on an unknown connection";
        return;
      }
      m.hello = true;
      m.data_path = msg.data_path;
      m.last_heartbeat = Now();
      m.suspected = false;
      // A respawned member rejoined; recovery may now restart at full DOP.
      if (phase_ == Phase::kRecovering) MaybeFinishRecovery();
      cv_.NotifyAll();
      return;
    }
    case ProcMsgType::kReady: {
      if (msg.epoch != epoch_ || phase_ != Phase::kStarting) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].ready = true;
      bool all = true;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && !m.ready) all = false;
      }
      if (!all) return;
      // Every member's epoch-N exchange registry is installed before any
      // epoch-N frame can flow — the Ready/Go barrier.
      ProcMsg go;
      go.type = ProcMsgType::kGo;
      go.epoch = epoch_;
      Broadcast(go);
      phase_ = Phase::kRunning;
      last_snapshot_done_ = Now();
      return;
    }
    case ProcMsgType::kSnapshotEntry: {
      // Accepted regardless of epoch: stragglers of a dying attempt belong
      // to an uncommitted snapshot that ClearInFlight sweeps after all
      // survivors reported stopped — and that sweep is ordered after every
      // straggler by the control sockets' FIFO ordering.
      imdg::SnapshotStateEntry entry;
      entry.vertex_id = msg.vertex_id;
      entry.writer_index = msg.writer_index;
      entry.key_hash = msg.key_hash;
      entry.key = msg.key;
      entry.value = msg.value;
      Status s = store_.WriteEntry(options_.job_id, msg.snapshot_id, entry);
      if (!s.ok()) JET_LOG(kError) << "snapshot entry write failed: " << s.ToString();
      // Mirror in-flight entries to the replica member. FIFO on the replica's
      // control socket orders every entry before the seal that counts them.
      if (msg.snapshot_id == in_flight_snapshot_ && replica_member_ >= 0 &&
          !replica_seal_sent_) {
        Member& r = members_[static_cast<size_t>(replica_member_)];
        if (r.alive && r.conn != nullptr) {
          ProcMsg fwd = msg;
          fwd.type = ProcMsgType::kSnapshotReplicaEntry;
          fwd.epoch = epoch_;
          (void)r.conn->SendFrame(EncodeControlMessage(fwd));
          ++replica_entries_sent_;
          replica_entries_counter_.Add(1);
        }
      }
      return;
    }
    case ProcMsgType::kSnapshotAck: {
      if (msg.epoch != epoch_ || msg.snapshot_id != in_flight_snapshot_) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].acked = true;
      bool all = true;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && !m.acked) all = false;
      }
      if (!all) return;
      // Every participant acked; the FIFO ordering guarantees all their
      // state entries already hit the store (proc_proto.h). With
      // replication on, commit additionally waits for the replica's ack.
      if (replica_member_ >= 0) {
        Member& r = members_[static_cast<size_t>(replica_member_)];
        if (r.alive && r.conn != nullptr) {
          ProcMsg seal;
          seal.type = ProcMsgType::kSnapshotReplicaSeal;
          seal.epoch = epoch_;
          seal.snapshot_id = in_flight_snapshot_;
          seal.entry_count = replica_entries_sent_;
          if (corrupt_next_seal_) {
            corrupt_next_seal_ = false;
            ++seal.entry_count;  // test hook: force a replica reject
          }
          (void)r.conn->SendFrame(EncodeControlMessage(seal));
          replica_seal_sent_ = true;
          return;  // commit on kSnapshotReplicaAck
        }
        // Replica died under us; its death will abort this snapshot via
        // recovery. Fall through only if it is somehow still counted live.
        replica_member_ = -1;
      }
      CommitInFlight();
      return;
    }
    case ProcMsgType::kSnapshotReplicaAck: {
      if (msg.epoch != epoch_ || msg.snapshot_id != in_flight_snapshot_ ||
          !replica_seal_sent_) {
        return;
      }
      const int32_t index = MemberIndexOf(e.conn);
      if (index != replica_member_) return;
      CommitInFlight();
      return;
    }
    case ProcMsgType::kSnapshotReplicaReject: {
      // Explicit negative ack: the replica's entry count disagreed with the
      // seal. Abort right now — without this message the only way to learn
      // of the hole is the ack-timeout watchdog, which burns seconds on a
      // condition the replica detected instantly.
      if (msg.epoch != epoch_ || msg.snapshot_id != in_flight_snapshot_ ||
          !replica_seal_sent_) {
        return;
      }
      const int32_t index = MemberIndexOf(e.conn);
      if (index != replica_member_) return;
      JET_LOG(kWarn) << "replica member " << index << " rejected snapshot "
                     << msg.snapshot_id << " (has " << msg.entry_count
                     << " entries, expected " << replica_entries_sent_
                     << "); aborting";
      ++replica_rejects_;
      replica_rejects_counter_.Add(1);
      AbortInFlightSnapshot();
      last_snapshot_done_ = Now();
      return;
    }
    case ProcMsgType::kSinkResult: {
      // Any-epoch: a replayed window must agree with its first emission —
      // that agreement *is* the exactly-once property under test.
      const auto key = std::make_pair(msg.result_key, msg.window_end);
      auto [it, inserted] = results_.emplace(key, msg.result_value);
      if (!inserted && it->second != msg.result_value) {
        result_conflict_ = InternalError(
            "conflicting results for key " + std::to_string(msg.result_key) +
            " window_end " + std::to_string(msg.window_end) + ": " +
            std::to_string(it->second) + " vs " + std::to_string(msg.result_value));
      }
      return;
    }
    case ProcMsgType::kAttemptDone: {
      if (msg.epoch != epoch_ || phase_ != Phase::kRunning) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].done = true;
      bool all = true;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && !m.done) all = false;
      }
      if (all) {
        phase_ = Phase::kDone;
        cv_.NotifyAll();
      }
      return;
    }
    case ProcMsgType::kAttemptStopped: {
      if (phase_ != Phase::kRecovering || msg.epoch != epoch_) return;
      const int32_t index = MemberIndexOf(e.conn);
      if (index < 0) return;
      members_[static_cast<size_t>(index)].stopped = true;
      MaybeFinishRecovery();
      return;
    }
    default:
      JET_LOG(kWarn) << "coordinator got unexpected message type "
                     << static_cast<int>(msg.type);
      return;
  }
}

void ProcessCluster::TimerPass() {
  if (shutting_down_) return;
  const Nanos now = Now();
  ReapScan();
  if (phase_ == Phase::kRunning && in_flight_snapshot_ == 0 &&
      now - last_snapshot_done_ >= options_.snapshot_interval) {
    in_flight_snapshot_ = next_snapshot_id_++;
    snapshot_request_time_ = now;
    for (Member& m : members_) m.acked = false;
    // Pick the replica holder for this snapshot: rotate over the
    // participants so replica load (and chaos coverage) spreads out.
    replica_member_ = -1;
    replica_entries_sent_ = 0;
    replica_seal_sent_ = false;
    if (options_.snapshot_replicas > 0) {
      std::vector<int32_t> participants;
      for (const Member& m : members_) {
        if (m.alive && m.node_id >= 0 && m.conn != nullptr) {
          participants.push_back(m.index);
        }
      }
      if (!participants.empty()) {
        replica_member_ = participants[static_cast<size_t>(
            in_flight_snapshot_ % static_cast<int64_t>(participants.size()))];
      }
    }
    ProcMsg req;
    req.type = ProcMsgType::kSnapshotRequest;
    req.epoch = epoch_;
    req.snapshot_id = in_flight_snapshot_;
    Broadcast(req);
  }
  if (in_flight_snapshot_ != 0 &&
      now - snapshot_request_time_ > options_.snapshot_ack_timeout) {
    JET_LOG(kWarn) << "snapshot " << in_flight_snapshot_ << " timed out; aborting";
    AbortInFlightSnapshot();
    last_snapshot_done_ = now;
  }
  LivenessPass(now);
  RespawnPass(now);
  int32_t live = 0;
  for (const Member& m : members_) {
    if (m.alive) ++live;
  }
  live_members_gauge_.Set(live);
}

void ProcessCluster::ReapScan() {
  // A member that dies before its control connection exists (exec failure,
  // crash during bring-up) produces no EOF — the only evidence is the
  // zombie. Probe nonblocking and run the same death path.
  for (Member& m : members_) {
    if (!m.alive || m.pid <= 0 || m.reaped) continue;
    if (TryReap(m.pid, /*blocking=*/false)) {
      m.reaped = true;
      OnMemberDied(m.index);
    }
  }
}

void ProcessCluster::LivenessPass(Nanos now) {
  if (!options_.liveness.enabled) return;
  int32_t suspected = 0;
  for (Member& m : members_) {
    if (!m.alive || !m.hello || m.liveness_killed) continue;
    const Nanos silence = now - m.last_heartbeat;
    if (silence > options_.liveness.down_after) {
      JET_LOG(kWarn) << "member " << m.index << " silent for "
                     << silence / kNanosPerMilli << " ms; declaring it down";
      // A SIGSTOP'd process ignores everything but SIGKILL/SIGCONT; the
      // kill turns the hang into a death the EOF/reap paths handle.
      if (m.pid > 0) (void)::kill(m.pid, SIGKILL);
      m.liveness_killed = true;
      m.suspected = false;
      continue;
    }
    if (silence > options_.liveness.suspect_after) {
      if (!m.suspected) {
        JET_LOG(kWarn) << "member " << m.index << " suspected (silent "
                       << silence / kNanosPerMilli << " ms)";
        m.suspected = true;
      }
      ++suspected;
    }
  }
  suspected_gauge_.Set(suspected);
}

void ProcessCluster::RespawnPass(Nanos now) {
  if (!options_.respawn.enabled) return;
  if (phase_ == Phase::kDone || phase_ == Phase::kFailed) {
    for (Member& m : members_) m.respawn_pending = false;
    return;
  }
  for (Member& m : members_) {
    if (m.respawn_pending && now >= m.respawn_due) {
      m.respawn_pending = false;
      JET_LOG(kWarn) << "respawning member " << m.index;
      Status s = SpawnMember(m.index);
      if (!s.ok()) {
        JET_LOG(kError) << "respawn of member " << m.index
                        << " failed: " << s.ToString();
        ScheduleRespawn(m, now);  // charge again; Fail()s on exhaustion
        continue;
      }
      ++respawns_;
      respawns_counter_.Add(1);
    }
    // A respawned (or freshly spawned) process that never says Hello is as
    // dead as a crash: kill it so the reap scan charges the next retry.
    if (m.alive && !m.hello && !m.liveness_killed && m.spawn_time > 0 &&
        now - m.spawn_time > options_.respawn.rejoin_timeout) {
      JET_LOG(kWarn) << "member " << m.index << " did not rejoin within "
                     << options_.respawn.rejoin_timeout / kNanosPerMilli
                     << " ms; killing it";
      if (m.pid > 0) (void)::kill(m.pid, SIGKILL);
      m.liveness_killed = true;
    }
  }
}

void ProcessCluster::AbortInFlightSnapshot() {
  if (in_flight_snapshot_ == 0) return;
  store_.Abort(options_.job_id, in_flight_snapshot_);
  ProcMsg aborted;
  aborted.type = ProcMsgType::kSnapshotAborted;
  aborted.epoch = epoch_;
  aborted.snapshot_id = in_flight_snapshot_;
  Broadcast(aborted);
  in_flight_snapshot_ = 0;
  replica_member_ = -1;
  replica_entries_sent_ = 0;
  replica_seal_sent_ = false;
}

void ProcessCluster::CommitInFlight() {
  Status s = store_.Commit(options_.job_id, in_flight_snapshot_);
  if (!s.ok()) {
    JET_LOG(kError) << "snapshot commit failed: " << s.ToString();
    store_.Abort(options_.job_id, in_flight_snapshot_);
  } else {
    last_committed_ = in_flight_snapshot_;
    last_replica_holder_ = replica_member_;
    ProcMsg committed;
    committed.type = ProcMsgType::kSnapshotCommitted;
    committed.epoch = epoch_;
    committed.snapshot_id = in_flight_snapshot_;
    Broadcast(committed);
  }
  in_flight_snapshot_ = 0;
  replica_member_ = -1;
  replica_entries_sent_ = 0;
  replica_seal_sent_ = false;
  last_snapshot_done_ = Now();
  cv_.NotifyAll();
}

void ProcessCluster::ScheduleRespawn(Member& m, Nanos now) {
  if (!options_.respawn.enabled || shutting_down_) return;
  // Storm coalescing: a second death from the same incident shares the
  // already-scheduled due time — it costs budget but does not advance the
  // ladder or push the restart further out.
  Nanos pending_due = 0;
  bool storm = false;
  for (const Member& o : members_) {
    if (o.respawn_pending) {
      storm = true;
      pending_due = std::max(pending_due, o.respawn_due);
    }
  }
  if (storm) {
    if (!respawn_backoff_->Charge()) {
      Fail("respawn budget exhausted (member " + std::to_string(m.index) +
           " died during a restart storm)");
      return;
    }
    m.respawn_pending = true;
    m.respawn_due = pending_due;
  } else {
    // Flap damping: a quiet stretch since the previous death restarts the
    // ladder from initial_backoff.
    if (last_death_time_ > 0 &&
        now - last_death_time_ >= options_.respawn.stability_period) {
      respawn_backoff_->ResetLadder();
    }
    std::optional<Nanos> delay = respawn_backoff_->NextDelay();
    if (!delay.has_value()) {
      Fail("respawn budget exhausted (member " + std::to_string(m.index) +
           " died with no retries left)");
      return;
    }
    m.respawn_pending = true;
    m.respawn_due = now + *delay;
    backoff_gauge_.Set(*delay);
  }
  last_death_time_ = now;
  budget_gauge_.Set(respawn_backoff_->budget_remaining());
}

void ProcessCluster::OnMemberDied(int32_t index) {
  Member& dead = members_[static_cast<size_t>(index)];
  if (!dead.alive) return;  // EOF and reap scan can both report the death
  JET_LOG(kWarn) << "member " << index << " (pid " << dead.pid << ") died";
  dead.alive = false;
  dead.hello = false;
  dead.suspected = false;
  RetireConn(dead);
  if (dead.pid > 0 && !dead.reaped) {
    // The process is gone (EOF proves it); the blocking reap returns
    // immediately, with EINTR retried and ECHILD tolerated.
    TryReap(dead.pid, /*blocking=*/true);
    dead.reaped = true;
  }
  if (shutting_down_ || phase_ == Phase::kDone || phase_ == Phase::kFailed) return;

  const Nanos now = Now();
  const bool was_participant = dead.node_id >= 0;
  dead.node_id = -1;

  ScheduleRespawn(dead, now);
  if (phase_ == Phase::kFailed) return;  // budget exhausted

  if (phase_ == Phase::kInit || phase_ == Phase::kIdle) {
    // Bring-up (or between-jobs) death. With respawn on, the pending
    // respawn heals the membership and Start()/WaitForFullMembership
    // complete on the replacement's Hello; with respawn off, fail fast
    // instead of stalling until bring_up_timeout.
    if (!options_.respawn.enabled) {
      Fail("member " + std::to_string(index) + " died during bring-up");
    }
    return;
  }
  if (!was_participant) return;

  int32_t survivors = 0;
  for (const Member& m : members_) {
    if (m.alive && m.node_id >= 0) ++survivors;
  }
  if (survivors == 0 && !options_.respawn.enabled) {
    Fail("all members died");
    return;
  }

  if (phase_ == Phase::kRecovering) {
    // A second death while stopping: the dead member can no longer report
    // AttemptStopped; re-evaluate with the smaller survivor set.
    MaybeFinishRecovery();
    return;
  }

  // §4.4 recovery: abandon the in-flight snapshot, stop the attempt on
  // every survivor, and only then sweep + restore — the AttemptStopped
  // barrier drains everything the old attempt ever put on the wire. With
  // respawn enabled the restart additionally waits for every pending
  // rejoin, so the new attempt runs at full DOP.
  AbortInFlightSnapshot();
  phase_ = Phase::kRecovering;
  for (Member& m : members_) m.stopped = false;
  ProcMsg stop;
  stop.type = ProcMsgType::kStopAttempt;
  stop.epoch = epoch_;
  Broadcast(stop);
  if (survivors == 0) MaybeFinishRecovery();
}

void ProcessCluster::MaybeFinishRecovery() {
  for (const Member& m : members_) {
    if (m.alive && m.node_id >= 0 && !m.stopped) return;
  }
  if (options_.respawn.enabled) {
    // Full-DOP restart: hold the recovery until every scheduled respawn
    // has forked *and* said Hello. Liveness guards the wait — a respawn
    // that never rejoins is killed, charged, and retried (or the budget
    // runs out and the cluster fails), so this cannot hang forever.
    for (const Member& m : members_) {
      if (m.respawn_pending) return;
      if (m.alive && !m.hello) return;
    }
  }
  store_.ClearInFlight(options_.job_id);
  auto restore = store_.LastCommitted(options_.job_id);
  if (!restore.ok()) {
    Fail("cannot read last committed snapshot: " + restore.status().ToString());
    return;
  }
  epoch_ += 1;
  StartAttempt(restore.value());
}

void ProcessCluster::StartAttempt(std::optional<imdg::SnapshotId> restore_snapshot) {
  // Plan-local node ids: rank among live members, in member-index order.
  std::vector<Member*> participants;
  for (Member& m : members_) {
    m.ready = false;
    m.done = false;
    m.acked = false;
    m.stopped = false;
    m.node_id = -1;
    if (m.alive && m.hello) {
      m.node_id = static_cast<int32_t>(participants.size());
      participants.push_back(&m);
    }
  }
  if (participants.empty()) {
    Fail("no live members to start the job on");
    return;
  }
  std::vector<std::string> data_paths;
  data_paths.reserve(participants.size());
  for (const Member* m : participants) data_paths.push_back(m->data_path);

  // Restore state is shipped whole to every member; each member routes the
  // entries to the processor instances it hosts (key ownership is a pure
  // function of key_hash, node_id and node_count).
  std::vector<ProcMsg> restore_msgs;
  if (restore_snapshot.has_value()) {
    for (int32_t vertex = 0; vertex < kWindowedCountVertexCount; ++vertex) {
      for (int32_t p = 0; p < imdg::kDefaultPartitionCount; ++p) {
        Status s = store_.ReadEntries(
            options_.job_id, *restore_snapshot, vertex, p,
            [this, vertex, &restore_msgs](imdg::SnapshotStateEntry entry) {
              ProcMsg m;
              m.type = ProcMsgType::kRestoreEntry;
              m.epoch = epoch_;
              m.snapshot_id = 0;  // identity irrelevant on restore
              m.vertex_id = vertex;
              m.writer_index = entry.writer_index;
              m.key_hash = entry.key_hash;
              m.key = std::move(entry.key);
              m.value = std::move(entry.value);
              restore_msgs.push_back(std::move(m));
            });
        if (!s.ok()) {
          Fail("restore read failed: " + s.ToString());
          return;
        }
      }
    }
    JET_LOG(kWarn) << "attempt " << epoch_ << ": restoring " << restore_msgs.size()
                   << " entries from snapshot " << *restore_snapshot << " on "
                   << participants.size() << " members";
  }

  ProcMsg start;
  start.type = ProcMsgType::kStartJob;
  start.epoch = epoch_;
  start.job_name = kWindowedCountJobName;
  start.node_count = static_cast<int32_t>(participants.size());
  start.clock_anchor = SharedMonotonicClock::RawNow();
  start.threads = options_.threads_per_member;
  start.events_per_second = options_.job_params.events_per_second;
  start.duration = options_.job_params.duration;
  start.key_count = options_.job_params.key_count;
  start.window_size = options_.job_params.window_size;
  start.watermark_interval = options_.job_params.watermark_interval;
  start.restore_count = static_cast<int64_t>(restore_msgs.size());
  start.data_paths = data_paths;

  for (Member* m : participants) {
    start.node_id = m->node_id;
    (void)m->conn->SendFrame(EncodeControlMessage(start));
    for (const ProcMsg& entry : restore_msgs) {
      (void)m->conn->SendFrame(EncodeControlMessage(entry));
    }
  }
  in_flight_snapshot_ = 0;
  replica_member_ = -1;
  replica_entries_sent_ = 0;
  replica_seal_sent_ = false;
  phase_ = Phase::kStarting;
}

void ProcessCluster::Broadcast(const ProcMsg& msg) {
  const Bytes frame = EncodeControlMessage(msg);
  for (Member& m : members_) {
    if (m.alive && m.conn != nullptr) (void)m.conn->SendFrame(frame);
  }
}

void ProcessCluster::Fail(const std::string& why) {
  JET_LOG(kError) << "process cluster failed: " << why;
  phase_ = Phase::kFailed;
  failure_ = why;
  cv_.NotifyAll();
}

}  // namespace jet::procmode
