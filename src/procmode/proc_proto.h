#ifndef JETSIM_PROCMODE_PROC_PROTO_H_
#define JETSIM_PROCMODE_PROC_PROTO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/serde.h"
#include "common/status.h"

namespace jet::procmode {

/// Control-plane protocol of process mode: every message travels as the
/// opaque body of a wire-format CONTROL frame (net::EncodeControlFrame)
/// over the coordinator<->member Unix-domain control socket.
///
/// The control socket is a FIFO byte stream, and the protocol leans on
/// that ordering for correctness:
///   - a member enqueues all SnapshotEntry messages of epoch E/snapshot S
///     *before* its SnapshotAck(S), so once the coordinator has processed
///     the ack, every entry is already in the store — commit implies
///     durability;
///   - a member enqueues SinkResult messages while processing items,
///     before it acknowledges the barrier that covers them, so a committed
///     snapshot implies the coordinator has seen all results the restored
///     state will *not* re-produce;
///   - AttemptStopped is enqueued after everything the torn-down attempt
///     ever sent, so the coordinator can sweep in-flight snapshot state
///     once all survivors reported stopped.
enum class ProcMsgType : uint8_t {
  // member -> coordinator
  kHello = 1,           ///< member_index, pid, data_path
  kReady = 2,           ///< epoch: plan built, restore applied, peers wired
  kSnapshotEntry = 3,   ///< epoch, snapshot_id, one state entry
  kSnapshotAck = 4,     ///< epoch, snapshot_id: all local participants done
  kSinkResult = 5,      ///< epoch, one WindowResult emitted by a local sink
  kAttemptStopped = 6,  ///< epoch: teardown after StopAttempt finished
  kAttemptDone = 7,     ///< epoch: every local tasklet completed naturally
  // coordinator -> member
  kStartJob = 8,         ///< epoch + job parameters + data socket map
  kRestoreEntry = 9,     ///< epoch, one state entry of the restore snapshot
  kGo = 10,              ///< epoch: all members Ready — start executing
  kSnapshotRequest = 11, ///< epoch, snapshot_id
  kSnapshotCommitted = 12,  ///< epoch, snapshot_id
  kSnapshotAborted = 13,    ///< epoch, snapshot_id (watchdog abandoned it)
  kStopAttempt = 14,        ///< epoch: tear the attempt down, keep process
  kShutdown = 15,           ///< exit the member process
  // liveness + snapshot replication (self-healing, PR 9)
  kHeartbeat = 16,  ///< member -> coordinator: periodic liveness proof
  /// coordinator -> replica member: one state entry of the in-flight
  /// snapshot, mirrored off the coordinator for durability.
  kSnapshotReplicaEntry = 17,
  /// coordinator -> replica member: all entries of snapshot_id were sent
  /// (FIFO: they precede this seal); entry_count lets the replica verify.
  kSnapshotReplicaSeal = 18,
  /// replica member -> coordinator: snapshot_id sealed and verified; the
  /// coordinator commits only after this ack, so every committed epoch
  /// exists in >= 2 processes.
  kSnapshotReplicaAck = 19,
  /// replica member -> coordinator: seal verification FAILED — the
  /// replica's entry count does not match the seal's. The coordinator
  /// aborts the snapshot immediately instead of letting the watchdog
  /// timeout discover the hole. entry_count carries the replica's actual
  /// count (the seal's expectation is in the coordinator's logs).
  kSnapshotReplicaReject = 20,
};

/// One control message. A flat struct (only the fields of `type` are
/// meaningful) keeps the codec to a single Encode/Decode pair.
struct ProcMsg {
  ProcMsgType type = ProcMsgType::kHello;
  /// Execution attempt this message belongs to (1-based; 0 for messages
  /// outside any attempt: Hello, Shutdown).
  int64_t epoch = 0;

  // kHello
  int32_t member_index = 0;
  int64_t pid = 0;
  std::string data_path;

  // kStartJob
  std::string job_name;
  int32_t node_id = 0;
  int32_t node_count = 1;
  /// Machine-wide CLOCK_MONOTONIC anchor all members subtract, giving the
  /// cluster one shared time domain (event timestamps and window
  /// boundaries must be comparable across processes).
  Nanos clock_anchor = 0;
  int32_t threads = 1;
  double events_per_second = 0;
  Nanos duration = 0;
  int64_t key_count = 0;
  Nanos window_size = 0;
  Nanos watermark_interval = 0;
  /// Number of kRestoreEntry messages that follow this StartJob.
  int64_t restore_count = 0;
  /// Data-socket path of each plan-local node id.
  std::vector<std::string> data_paths;

  // kRestoreEntry / kSnapshotEntry / kSnapshotReplicaEntry
  // (+ snapshot_id for the latter two)
  int64_t snapshot_id = 0;
  int32_t vertex_id = 0;
  int32_t writer_index = 0;
  uint64_t key_hash = 0;
  Bytes key;
  Bytes value;

  // kSnapshotReplicaSeal
  /// Entries of snapshot_id the replica must have received before the seal.
  int64_t entry_count = 0;

  // kSinkResult
  uint64_t result_key = 0;
  Nanos window_start = 0;
  Nanos window_end = 0;
  int64_t result_value = 0;
};

/// Serializes `msg` and wraps it in a wire-format CONTROL frame, ready for
/// SocketConnection::SendFrame.
Bytes EncodeControlMessage(const ProcMsg& msg);

/// Unwraps a CONTROL frame and decodes the message. Any malformed input —
/// bad wire framing, unknown message type, truncated or trailing bytes —
/// returns an error Status.
Result<ProcMsg> DecodeControlMessage(const Bytes& frame);

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_PROC_PROTO_H_
