#ifndef JETSIM_PROCMODE_PROCESS_MEMBER_H_
#define JETSIM_PROCMODE_PROCESS_MEMBER_H_

#include <time.h>

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dag.h"
#include "core/execution_plan.h"
#include "core/execution_service.h"
#include "core/tasklet.h"
#include "net/exchange.h"
#include "net/network.h"
#include "net/socket_transport.h"
#include "procmode/proc_proto.h"
#include "procmode/replica_store.h"
#include "procmode/socket_exchange.h"
#include "procmode/windowed_job.h"

namespace jet::procmode {

/// Clock sharing one time domain across all member processes of a machine:
/// CLOCK_MONOTONIC is machine-wide, so subtracting a common anchor (picked
/// by the coordinator, shipped in StartJob) gives every process identical
/// readings. Event timestamps, window boundaries and snapshot-restored
/// generator anchors stay comparable across processes and across attempts.
class SharedMonotonicClock final : public Clock {
 public:
  explicit SharedMonotonicClock(Nanos anchor) : anchor_(anchor) {}

  Nanos Now() const override { return RawNow() - anchor_; }

  static Nanos RawNow() {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<Nanos>(ts.tv_sec) * kNanosPerSecond + ts.tv_nsec;
  }

 private:
  Nanos anchor_;
};

/// One Jet member as an OS process: owns this member's data-socket server,
/// a control connection to the coordinator, and — per attempt — the
/// member's slice of the execution (plan + exchange tasklets over
/// SocketExchangeRegistry, snapshot pump, completion monitor). The process
/// persists across attempts; each StartJob assigns it a fresh plan-local
/// node id for that epoch. jet_member's main() is a thin wrapper around
/// Run().
class ProcessMember {
 public:
  struct Options {
    int32_t member_index = 0;
    /// Directory for this member's data socket.
    std::string work_dir;
    /// Coordinator's control-socket path.
    std::string control_path;
    /// Liveness heartbeat cadence on the control socket (0 disables).
    /// Shipped by the coordinator as jet_member's 4th argv.
    Nanos heartbeat_interval = 25 * kNanosPerMilli;
  };

  explicit ProcessMember(Options options) : options_(std::move(options)) {}
  ~ProcessMember();

  ProcessMember(const ProcessMember&) = delete;
  ProcessMember& operator=(const ProcessMember&) = delete;

  /// Brings up the data server, connects control, sends Hello, and serves
  /// attempts until Shutdown arrives or the coordinator disappears.
  Status Run();

 private:
  /// Everything belonging to one execution attempt. Held by shared_ptr:
  /// data-connection I/O threads grab a reference to route inbound frames,
  /// so a torn-down attempt is freed only after the last in-flight
  /// dispatch returns.
  struct Attempt {
    int64_t epoch = 0;
    int32_t node_id = 0;
    int32_t node_count = 1;
    WindowedJobParams params;
    core::Dag dag;
    std::unique_ptr<SharedMonotonicClock> clock;
    /// Member-local in-memory bus; allocates channel ids only.
    std::unique_ptr<net::Network> bus;
    std::vector<std::shared_ptr<net::SocketConnection>> peer_conns;
    std::shared_ptr<SocketExchangeRegistry> registry;
    std::unique_ptr<net::NetworkEdgeFactory> factory;
    std::unique_ptr<core::ExecutionPlan> plan;
    std::vector<std::unique_ptr<core::ProcessorTasklet>> net_tasklets;
    std::unique_ptr<core::ExecutionService> service;
    core::SnapshotControl snapshot_control;
    std::atomic<bool> cancelled{false};
    std::atomic<bool> stopping{false};
    int64_t restore_remaining = 0;
    std::vector<ProcMsg> restore_entries;
    bool running = false;  // Go received, service started
    std::thread snapshot_pump;
    std::thread done_monitor;
  };

  // Control-plane plumbing. HandleControlFrame runs on the control
  // connection's I/O thread: snapshot signals are applied to the current
  // attempt's atomics inline (they must not wait behind a structural
  // message being processed), everything else is queued for the Run()
  // thread.
  void HandleControlFrame(Bytes frame);
  void EnqueueMsg(ProcMsg msg);
  Status SendControl(const ProcMsg& msg);

  // Structural message handlers; all run on the Run() thread.
  Status HandleStartJob(ProcMsg msg);
  Status HandleRestoreEntry(ProcMsg msg);
  Status FinishBringUp();  // restore applied -> Ready
  Status HandleGo();
  void TeardownAttempt();

  /// Applies buffered restore entries to the plan: LoadSnapshotIntoPlan's
  /// routing (key_hash % total_parallelism -> global_index), minus the
  /// store read — the coordinator owns the store and shipped the entries.
  void ApplyRestoreEntries(Attempt* attempt);

  // Data-plane: inbound frames from peer members.
  void DispatchDataFrame(Bytes frame);

  std::shared_ptr<Attempt> current_attempt() {
    jet::MutexLock lock(attempt_mu_);
    return attempt_;
  }

  Options options_;
  std::shared_ptr<net::SocketConnection> control_;
  std::unique_ptr<net::SocketServer> data_server_;
  std::string data_path_;

  /// Mirror of in-flight/committed snapshot state this member holds as the
  /// coordinator's replica. Touched on the control I/O thread only
  /// (plus introspection), see replica_store.h.
  ReplicaStore replica_store_;

  /// Liveness: proves the process is scheduling, not just connected — a
  /// SIGSTOP'd member keeps its socket open but stops beating.
  std::thread heartbeat_thread_;
  std::atomic<bool> heartbeat_stop_{false};

  jet::Mutex attempt_mu_;
  std::shared_ptr<Attempt> attempt_ JET_GUARDED_BY(attempt_mu_);

  jet::Mutex queue_mu_;
  jet::CondVar queue_cv_;
  std::deque<ProcMsg> queue_ JET_GUARDED_BY(queue_mu_);
  bool control_lost_ JET_GUARDED_BY(queue_mu_) = false;

  jet::Mutex data_conns_mu_;
  std::vector<std::unique_ptr<net::SocketConnection>> data_conns_
      JET_GUARDED_BY(data_conns_mu_);
};

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_PROCESS_MEMBER_H_
