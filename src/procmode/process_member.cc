#include "procmode/process_member.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace jet::procmode {

using std::chrono::microseconds;
using std::chrono::milliseconds;

namespace {

constexpr Nanos kPumpPollInterval = 200 * kNanosPerMicro;
constexpr Nanos kDonePollInterval = kNanosPerMilli;

/// Retry policy for connecting to the coordinator's control socket and to
/// peers' data sockets. Peers are spawned together and their servers come
/// up before Hello, so in practice the first attempt succeeds; the ladder
/// (~10 s worth of attempts) covers a loaded CI machine and a respawned
/// member racing a recovering peer. Bounded attempts — a member must
/// declare the peer dead rather than spin forever.
BackoffOptions ConnectBackoff() {
  BackoffOptions b;
  b.retry_budget = 12;
  b.initial_backoff = 5 * kNanosPerMilli;
  b.max_backoff = 2 * kNanosPerSecond;
  return b;
}

}  // namespace

ProcessMember::~ProcessMember() {
  heartbeat_stop_.store(true, std::memory_order_release);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  TeardownAttempt();
  {
    jet::MutexLock lock(data_conns_mu_);
    for (auto& c : data_conns_) c->Close();
    data_conns_.clear();
  }
  if (data_server_ != nullptr) data_server_->Stop();
  if (control_ != nullptr) control_->Close();
}

Status ProcessMember::Run() {
  // Data server first: the Hello announcing its path is the coordinator's
  // signal that peers may connect.
  data_path_ =
      options_.work_dir + "/data-m" + std::to_string(options_.member_index) + ".sock";
  auto server = net::SocketServer::ListenUnix(data_path_);
  JET_RETURN_IF_ERROR(server.status());
  data_server_ = std::move(server.value());
  data_server_->Start([this](std::unique_ptr<net::SocketConnection> conn) {
    net::SocketConnection* raw = conn.get();
    raw->Start([this](Bytes frame) { DispatchDataFrame(std::move(frame)); });
    jet::MutexLock lock(data_conns_mu_);
    data_conns_.push_back(std::move(conn));
  });

  auto control = net::SocketConnection::ConnectUnixWithBackoff(
      options_.control_path, ConnectBackoff(),
      static_cast<uint64_t>(options_.member_index));
  JET_RETURN_IF_ERROR(control.status());
  control_ = std::move(control.value());
  control_->Start([this](Bytes frame) { HandleControlFrame(std::move(frame)); },
                  [this]() {
                    jet::MutexLock lock(queue_mu_);
                    control_lost_ = true;
                    queue_cv_.NotifyAll();
                  });

  ProcMsg hello;
  hello.type = ProcMsgType::kHello;
  hello.member_index = options_.member_index;
  hello.pid = static_cast<int64_t>(getpid());
  hello.data_path = data_path_;
  JET_RETURN_IF_ERROR(SendControl(hello));

  // Heartbeats ride the control socket from a dedicated thread: they prove
  // the process is scheduling even while the Run() thread is busy tearing
  // an attempt down. A SIGSTOP freezes this thread too — which is exactly
  // what lets the coordinator's liveness pass notice the hang.
  if (options_.heartbeat_interval > 0) {
    auto control_conn = control_;
    const Nanos interval = options_.heartbeat_interval;
    heartbeat_thread_ = std::thread([this, control_conn, interval]() {
      ProcMsg beat;
      beat.type = ProcMsgType::kHeartbeat;
      const Bytes frame = EncodeControlMessage(beat);
      while (!heartbeat_stop_.load(std::memory_order_acquire)) {
        if (!control_conn->SendFrame(frame).ok()) return;  // control gone
        std::this_thread::sleep_for(milliseconds(
            std::max<int64_t>(1, interval / kNanosPerMilli)));
      }
    });
  }

  // Serve control messages until Shutdown (or the coordinator vanished —
  // an orphaned member must not outlive the test that spawned it).
  for (;;) {
    ProcMsg msg;
    {
      jet::MutexLock lock(queue_mu_);
      queue_cv_.Wait(queue_mu_, [this]() JET_REQUIRES(queue_mu_) {
        return !queue_.empty() || control_lost_;
      });
      if (queue_.empty() && control_lost_) {
        TeardownAttempt();
        return UnavailableError("coordinator connection lost");
      }
      msg = std::move(queue_.front());
      queue_.pop_front();
    }
    Status s = Status::OK();
    switch (msg.type) {
      case ProcMsgType::kStartJob:
        s = HandleStartJob(std::move(msg));
        break;
      case ProcMsgType::kRestoreEntry:
        s = HandleRestoreEntry(std::move(msg));
        break;
      case ProcMsgType::kGo:
        s = HandleGo();
        break;
      case ProcMsgType::kStopAttempt: {
        const int64_t epoch = msg.epoch;
        TeardownAttempt();
        ProcMsg reply;
        reply.type = ProcMsgType::kAttemptStopped;
        reply.epoch = epoch;
        s = SendControl(reply);
        break;
      }
      case ProcMsgType::kShutdown:
        TeardownAttempt();
        return Status::OK();
      default:
        JET_LOG(kWarn) << "member got unexpected control message type "
                       << static_cast<int>(msg.type);
        break;
    }
    if (!s.ok()) {
      JET_LOG(kError) << "member " << options_.member_index
                      << " failed: " << s.ToString();
      TeardownAttempt();
      return s;
    }
  }
}

void ProcessMember::HandleControlFrame(Bytes frame) {
  auto msg = DecodeControlMessage(frame);
  if (!msg.ok()) {
    JET_LOG(kError) << "bad control frame: " << msg.status().ToString();
    return;
  }
  // Snapshot signals bypass the queue: they are single atomic stores the
  // tasklets poll, and they must not wait behind a structural message the
  // Run() thread is busy with.
  switch (msg->type) {
    case ProcMsgType::kSnapshotRequest: {
      auto attempt = current_attempt();
      if (attempt != nullptr && attempt->epoch == msg->epoch) {
        attempt->snapshot_control.acks.store(0, std::memory_order_release);
        attempt->snapshot_control.requested.store(msg->snapshot_id,
                                                  std::memory_order_release);
      }
      return;
    }
    case ProcMsgType::kSnapshotCommitted: {
      // Replica promotion is attempt-agnostic: snapshot ids are monotonic
      // across attempts and the replica's copy outlives the attempt.
      replica_store_.OnCommitted(msg->snapshot_id);
      auto attempt = current_attempt();
      if (attempt != nullptr && attempt->epoch == msg->epoch) {
        attempt->snapshot_control.committed.store(msg->snapshot_id,
                                                  std::memory_order_release);
      }
      return;
    }
    case ProcMsgType::kSnapshotAborted: {
      replica_store_.OnAborted(msg->snapshot_id);
      auto attempt = current_attempt();
      if (attempt != nullptr && attempt->epoch == msg->epoch) {
        attempt->snapshot_control.aborted.store(msg->snapshot_id,
                                                std::memory_order_release);
      }
      return;
    }
    case ProcMsgType::kSnapshotReplicaEntry: {
      // Bounded work (one buffered insert) — safe on the I/O thread, and
      // FIFO with the seal that will count these entries.
      imdg::SnapshotStateEntry entry;
      entry.vertex_id = msg->vertex_id;
      entry.writer_index = msg->writer_index;
      entry.key_hash = msg->key_hash;
      entry.key = std::move(msg->key);
      entry.value = std::move(msg->value);
      replica_store_.AddEntry(msg->snapshot_id, std::move(entry));
      return;
    }
    case ProcMsgType::kSnapshotReplicaSeal: {
      if (replica_store_.Seal(msg->snapshot_id, msg->entry_count)) {
        ProcMsg ack;
        ack.type = ProcMsgType::kSnapshotReplicaAck;
        ack.epoch = msg->epoch;
        ack.snapshot_id = msg->snapshot_id;
        (void)control_->SendFrame(EncodeControlMessage(ack));
      } else {
        // Explicit negative ack: the coordinator aborts the snapshot the
        // moment this arrives, instead of burning its watchdog timeout on
        // a hole it could have known about immediately.
        ProcMsg reject;
        reject.type = ProcMsgType::kSnapshotReplicaReject;
        reject.epoch = msg->epoch;
        reject.snapshot_id = msg->snapshot_id;
        reject.entry_count = replica_store_.pending_entry_count(msg->snapshot_id);
        (void)control_->SendFrame(EncodeControlMessage(reject));
        JET_LOG(kError) << "replica seal mismatch for snapshot "
                        << msg->snapshot_id << ": expected " << msg->entry_count
                        << " entries, have " << reject.entry_count;
      }
      return;
    }
    default:
      EnqueueMsg(std::move(msg.value()));
      return;
  }
}

void ProcessMember::EnqueueMsg(ProcMsg msg) {
  jet::MutexLock lock(queue_mu_);
  queue_.push_back(std::move(msg));
  queue_cv_.NotifyAll();
}

Status ProcessMember::SendControl(const ProcMsg& msg) {
  return control_->SendFrame(EncodeControlMessage(msg));
}

Status ProcessMember::HandleStartJob(ProcMsg msg) {
  TeardownAttempt();  // a StartJob for epoch N+1 implies epoch N is gone

  auto attempt = std::make_shared<Attempt>();
  attempt->epoch = msg.epoch;
  attempt->node_id = msg.node_id;
  attempt->node_count = msg.node_count;
  attempt->params.events_per_second = msg.events_per_second;
  attempt->params.duration = msg.duration;
  attempt->params.key_count = msg.key_count;
  attempt->params.window_size = msg.window_size;
  attempt->params.watermark_interval = msg.watermark_interval;
  attempt->clock = std::make_unique<SharedMonotonicClock>(msg.clock_anchor);
  attempt->bus = std::make_unique<net::Network>();
  attempt->restore_remaining = msg.restore_count;

  // The sink ships every result to the coordinator the moment it is
  // processed — before the covering barrier is acked on the same FIFO
  // socket, which is what makes committed-snapshot results durable.
  auto control = control_;
  const int64_t epoch = msg.epoch;
  ResultEmitFn emit = [control, epoch](const core::WindowResult<int64_t>& r) {
    ProcMsg m;
    m.type = ProcMsgType::kSinkResult;
    m.epoch = epoch;
    m.result_key = r.key;
    m.window_start = r.window_start;
    m.window_end = r.window_end;
    m.result_value = r.value;
    (void)control->SendFrame(EncodeControlMessage(m));
  };
  JET_RETURN_IF_ERROR(
      BuildJobDag(msg.job_name, attempt->params, std::move(emit), &attempt->dag));

  // State entries stream to the coordinator's store as they are captured;
  // the ack that gates the commit follows them on the same socket.
  attempt->snapshot_control.write_entry =
      [control, epoch](int64_t snapshot_id, core::VertexId vertex, int32_t writer_index,
                       core::StateEntry&& entry) {
        ProcMsg m;
        m.type = ProcMsgType::kSnapshotEntry;
        m.epoch = epoch;
        m.snapshot_id = snapshot_id;
        m.vertex_id = vertex;
        m.writer_index = writer_index;
        m.key_hash = entry.key_hash;
        m.key = std::move(entry.key);
        m.value = std::move(entry.value);
        return control->SendFrame(EncodeControlMessage(m)).ok();
      };

  // Outbound data connections: one per peer node, fresh per attempt. Peer
  // data servers persist across attempts, so a survivor of a recovery
  // reconnects to the same paths.
  if (static_cast<int32_t>(msg.data_paths.size()) != msg.node_count) {
    return InvalidArgumentError("StartJob data path map does not match node count");
  }
  attempt->peer_conns.resize(static_cast<size_t>(msg.node_count));
  for (int32_t n = 0; n < msg.node_count; ++n) {
    if (n == attempt->node_id) continue;
    auto conn = net::SocketConnection::ConnectUnixWithBackoff(
        msg.data_paths[static_cast<size_t>(n)], ConnectBackoff(),
        static_cast<uint64_t>(options_.member_index) << 16 |
            static_cast<uint64_t>(n));
    JET_RETURN_IF_ERROR(conn.status());
    std::shared_ptr<net::SocketConnection> shared = std::move(conn.value());
    // Peers never write back on our outbound connection (their acks ride
    // their own outbound connection to us); Start() is still required to
    // drive the write side.
    shared->Start([](Bytes) {
      JET_LOG(kWarn) << "unexpected inbound frame on outbound data connection";
    });
    attempt->peer_conns[static_cast<size_t>(n)] = std::move(shared);
  }

  net::ExchangeOptions exchange_options;
  // Process-mode hops always pay real serialization; the flag is for
  // in-process executions (JobConfig::serialize_exchange_frames).
  exchange_options.serialize_frames = false;
  exchange_options.epoch = attempt->epoch;
  attempt->registry = std::make_shared<SocketExchangeRegistry>(
      attempt->bus.get(), exchange_options, attempt->node_id, attempt->peer_conns);

  core::JobConfig config;
  config.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  core::NodeInfo node{attempt->node_id, attempt->node_count};
  const Clock* clock = attempt->clock.get();
  attempt->factory = std::make_unique<net::NetworkEdgeFactory>(
      attempt->registry.get(), &attempt->dag, node, config, msg.threads, clock,
      &attempt->cancelled, &attempt->snapshot_control);
  auto plan =
      core::ExecutionPlan::Build(attempt->dag, node, config, msg.threads, clock,
                                 &attempt->cancelled, attempt->factory.get(),
                                 &attempt->snapshot_control);
  JET_RETURN_IF_ERROR(plan.status());
  attempt->plan = std::move(plan.value());
  attempt->net_tasklets = attempt->factory->TakeTasklets();

  core::ExecutionService::Options service_options;
  attempt->service =
      std::make_unique<core::ExecutionService>(msg.threads, nullptr, service_options);

  {
    jet::MutexLock lock(attempt_mu_);
    attempt_ = std::move(attempt);
  }
  // Restore entries (if any) stream in next; Ready goes out once the last
  // one is applied.
  auto current = current_attempt();
  if (current->restore_remaining == 0) return FinishBringUp();
  return Status::OK();
}

Status ProcessMember::HandleRestoreEntry(ProcMsg msg) {
  auto attempt = current_attempt();
  if (attempt == nullptr || attempt->epoch != msg.epoch || attempt->running) {
    return Status::OK();  // straggler of a superseded attempt
  }
  attempt->restore_entries.push_back(std::move(msg));
  if (--attempt->restore_remaining == 0) return FinishBringUp();
  return Status::OK();
}

Status ProcessMember::FinishBringUp() {
  auto attempt = current_attempt();
  if (attempt == nullptr) return InternalError("no attempt to bring up");
  ApplyRestoreEntries(attempt.get());
  ProcMsg ready;
  ready.type = ProcMsgType::kReady;
  ready.epoch = attempt->epoch;
  return SendControl(ready);
}

void ProcessMember::ApplyRestoreEntries(Attempt* attempt) {
  // Group instances by vertex, then route each entry to the instance
  // owning its key — the same distribution LoadSnapshotIntoPlan applies
  // when the store is local. Exchange tasklets hold no restorable state.
  std::unordered_map<core::VertexId, std::vector<const core::TaskletInfo*>> by_vertex;
  for (const core::TaskletInfo& info : attempt->plan->tasklet_infos()) {
    by_vertex[info.vertex].push_back(&info);
  }
  std::unordered_map<const core::TaskletInfo*, std::vector<core::StateEntry>> routed;
  for (ProcMsg& msg : attempt->restore_entries) {
    auto it = by_vertex.find(msg.vertex_id);
    if (it == by_vertex.end()) continue;  // vertex has no instance here
    const auto total = static_cast<uint64_t>(it->second.front()->total_parallelism);
    const auto owner = static_cast<int32_t>(msg.key_hash % total);
    for (const core::TaskletInfo* info : it->second) {
      if (info->global_index != owner) continue;
      core::StateEntry entry;
      entry.key_hash = msg.key_hash;
      entry.key = std::move(msg.key);
      entry.value = std::move(msg.value);
      routed[info].push_back(std::move(entry));
      break;
    }
  }
  for (auto& [info, entries] : routed) {
    info->tasklet->SetRestoreEntries(std::move(entries));
  }
  attempt->restore_entries.clear();
}

Status ProcessMember::HandleGo() {
  auto attempt = current_attempt();
  if (attempt == nullptr) return InternalError("Go without an attempt");
  if (attempt->running) return Status::OK();
  attempt->running = true;

  std::vector<core::Tasklet*> tasklets = attempt->plan->Tasklets();
  for (auto& t : attempt->net_tasklets) tasklets.push_back(t.get());
  JET_RETURN_IF_ERROR(attempt->service->Start(std::move(tasklets)));

  // Snapshot pump: acks a requested snapshot once every local participant
  // has persisted it. The per-tasklet completed ids (not a shared counter)
  // keep stragglers of a watchdog-aborted epoch from counting toward the
  // next one — same rule as the in-process coordinator.
  std::vector<const core::ProcessorTasklet*> participants;
  for (const core::TaskletInfo& info : attempt->plan->tasklet_infos()) {
    if (info.tasklet->ParticipatesInSnapshots()) participants.push_back(info.tasklet);
  }
  for (const auto& t : attempt->net_tasklets) {
    if (t->ParticipatesInSnapshots()) participants.push_back(t.get());
  }
  Attempt* raw = attempt.get();
  auto control = control_;
  attempt->snapshot_pump = std::thread([raw, control, participants]() {
    int64_t last_acked = 0;
    while (!raw->stopping.load(std::memory_order_acquire)) {
      const int64_t id = raw->snapshot_control.requested.load(std::memory_order_acquire);
      if (id > last_acked) {
        bool all_done = true;
        for (const core::ProcessorTasklet* t : participants) {
          if (t->completed_snapshot_id() < id) {
            all_done = false;
            break;
          }
        }
        if (all_done) {
          ProcMsg ack;
          ack.type = ProcMsgType::kSnapshotAck;
          ack.epoch = raw->epoch;
          ack.snapshot_id = id;
          (void)control->SendFrame(EncodeControlMessage(ack));
          last_acked = id;
        }
      }
      std::this_thread::sleep_for(microseconds(kPumpPollInterval / kNanosPerMicro));
    }
  });

  attempt->done_monitor = std::thread([raw, control]() {
    while (!raw->stopping.load(std::memory_order_acquire)) {
      if (raw->service->IsComplete()) {
        ProcMsg done;
        done.type = ProcMsgType::kAttemptDone;
        done.epoch = raw->epoch;
        (void)control->SendFrame(EncodeControlMessage(done));
        return;
      }
      std::this_thread::sleep_for(milliseconds(kDonePollInterval / kNanosPerMilli));
    }
  });
  return Status::OK();
}

void ProcessMember::TeardownAttempt() {
  std::shared_ptr<Attempt> attempt;
  {
    jet::MutexLock lock(attempt_mu_);
    attempt = std::move(attempt_);
  }
  if (attempt == nullptr) return;
  attempt->stopping.store(true, std::memory_order_release);
  attempt->cancelled.store(true, std::memory_order_release);
  if (attempt->running) {
    attempt->service->Cancel();
    (void)attempt->service->AwaitCompletion();
  }
  if (attempt->snapshot_pump.joinable()) attempt->snapshot_pump.join();
  if (attempt->done_monitor.joinable()) attempt->done_monitor.join();
  for (auto& conn : attempt->peer_conns) {
    if (conn != nullptr) conn->Close();
  }
  // In-flight inbound dispatches may still hold the shared_ptr; the
  // attempt is freed when the last one returns. Their frames are epoch-
  // filtered, so they can no longer mutate anything that matters.
}

void ProcessMember::DispatchDataFrame(Bytes frame) {
  auto decoded = net::DecodeFrame(frame);
  if (!decoded.ok()) {
    JET_LOG(kError) << "bad data frame: " << decoded.status().ToString();
    return;
  }
  auto attempt = current_attempt();
  if (attempt == nullptr || attempt->registry == nullptr) return;
  attempt->registry->RouteInbound(std::move(decoded.value()));
}

}  // namespace jet::procmode
