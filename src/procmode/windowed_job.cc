#include "procmode/windowed_job.h"

#include <memory>
#include <utility>

#include "core/aggregate.h"
#include "core/processors_basic.h"

namespace jet::procmode {
namespace {

struct AuctionEvent {
  uint64_t auction = 0;
};

/// Sink forwarding every window result to a callback. Unlike CollectSinkP
/// (whose results live and die with the process), the callback can push
/// each result onto the control socket the moment it is processed — the
/// FIFO ordering with the following barrier ack is what makes pre-crash
/// results durable at the coordinator (see proc_proto.h).
class EmitSinkP final : public core::Processor {
 public:
  explicit EmitSinkP(ResultEmitFn emit) : emit_(std::move(emit)) {}

  void Process(int ordinal, core::Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      emit_(inbox->Peek()->payload.As<core::WindowResult<int64_t>>());
      inbox->RemoveFront();
    }
  }

 private:
  ResultEmitFn emit_;
};

}  // namespace

Status BuildJobDag(const std::string& name, const WindowedJobParams& params,
                   ResultEmitFn emit, core::Dag* dag) {
  if (name != kWindowedCountJobName) {
    return InvalidArgumentError("unknown job name: " + name);
  }
  using core::ProcessorMeta;
  const double rate = params.events_per_second;
  const Nanos duration = params.duration;
  const Nanos wm_interval = params.watermark_interval;
  const int64_t keys = params.key_count;
  core::WindowDef window = core::WindowDef::Tumbling(params.window_size);
  auto op = core::CountingAggregate<AuctionEvent>();

  auto source = dag->AddVertex(
      "bids",
      [rate, duration, keys, wm_interval](const ProcessorMeta&)
          -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<AuctionEvent>::Options opt;
        opt.events_per_second = rate;
        opt.duration = duration;
        opt.watermark_interval = wm_interval;
        return std::make_unique<core::GeneratorSourceP<AuctionEvent>>(
            [keys](int64_t seq) {
              AuctionEvent e{static_cast<uint64_t>(seq % keys)};
              return std::make_pair(e, HashU64(e.auction));
            },
            opt);
      },
      1);
  auto accumulate = dag->AddVertex(
      "accumulate",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::AccumulateByFrameP<AuctionEvent, int64_t, int64_t>>(
            op, [](const AuctionEvent& e) { return e.auction; }, window);
      },
      1);
  auto combine = dag->AddVertex(
      "combine",
      [op, window](const ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<AuctionEvent, int64_t, int64_t>>(
            op, window);
      },
      1);
  auto sink = dag->AddVertex(
      "sink",
      [emit](const ProcessorMeta&) { return std::make_unique<EmitSinkP>(emit); }, 1);

  dag->AddEdge(source, accumulate);
  auto& exchange = dag->AddEdge(accumulate, combine);
  exchange.routing = core::RoutingPolicy::kPartitioned;
  exchange.distributed = true;
  dag->AddEdge(combine, sink);
  return dag->Validate();
}

int64_t WindowedJobExpectedTotal(const WindowedJobParams& params) {
  auto period = static_cast<Nanos>(1e9 / params.events_per_second);
  if (period < 1) period = 1;
  return (params.duration + period - 1) / period;
}

}  // namespace jet::procmode
