#ifndef JETSIM_PROCMODE_PROCESS_CLUSTER_H_
#define JETSIM_PROCMODE_PROCESS_CLUSTER_H_

#include <sys/types.h>

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"
#include "net/socket_transport.h"
#include "procmode/proc_proto.h"
#include "procmode/windowed_job.h"

namespace jet::procmode {

/// Coordinator of a multi-process Jet cluster: spawns N `jet_member` OS
/// processes, serves their control connections over a Unix-domain socket,
/// and runs the job control plane that JetCluster runs in-process —
/// snapshot scheduling with an ack-timeout watchdog (§4.4), death-driven
/// recovery from the last committed snapshot, exactly-once verification of
/// sink results.
///
/// The coordinator owns the snapshot store: members stream state entries
/// and sink results over their control sockets (FIFO ordering arguments in
/// proc_proto.h), so a member can be `kill -9`ed at any instant without
/// losing anything a committed snapshot depends on.
///
/// Recovery walk on a member death (detected as control-connection EOF):
/// abort the in-flight snapshot, broadcast StopAttempt, await
/// AttemptStopped from every survivor (draining their control streams),
/// sweep uncommitted store state, then restart the job on the survivors
/// from the last committed snapshot at epoch+1. Stale data frames of the
/// dead epoch are dropped by the members' epoch filters.
class ProcessCluster {
 public:
  struct Options {
    /// Path of the jet_member executable.
    std::string member_binary;
    /// Directory for control/data sockets; created if missing.
    std::string work_dir;
    int32_t initial_members = 3;
    int32_t threads_per_member = 1;
    WindowedJobParams job_params;
    /// Cadence of coordinator-initiated snapshots.
    Nanos snapshot_interval = 50 * kNanosPerMilli;
    /// Watchdog: abort an in-flight snapshot not fully acked in time.
    Nanos snapshot_ack_timeout = 10 * kNanosPerSecond;
    /// Deadline for member processes to connect and send Hello.
    Nanos bring_up_timeout = 30 * kNanosPerSecond;
    imdg::JobId job_id = 1;
  };

  explicit ProcessCluster(Options options);
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Binds the control socket, spawns the member processes and waits for
  /// every member's Hello.
  Status Start();

  /// Starts the windowed-count job (attempt 1, no restore) on all members.
  Status SubmitWindowedJob();

  /// Blocks until the last committed snapshot id reaches `min_snapshot_id`.
  Status WaitForCommittedSnapshot(int64_t min_snapshot_id, Nanos timeout);

  /// SIGKILLs a member process — the chaos injection. Recovery is
  /// triggered by the control connection's EOF, exactly as a real crash.
  Status KillMember(int32_t member_index);

  /// Blocks until every participant of the current attempt reported
  /// AttemptDone (across recoveries), or the job failed.
  Status AwaitJobCompletion(Nanos timeout);

  /// Shuts members down (graceful, then SIGKILL stragglers), stops the
  /// control plane. Idempotent; also run by the destructor.
  void Shutdown();

  /// Events the generator pushes per attempt-from-scratch; with recovery
  /// from a snapshot, replay makes the *distinct* result total equal it.
  int64_t expected_total() const { return WindowedJobExpectedTotal(options_.job_params); }

  /// Sum over distinct (key, window) sink results. Errors if two results
  /// for the same window disagreed — a broken exactly-once guarantee.
  Result<int64_t> DistinctTotal() const;

  /// DistinctTotal() == expected_total(), with diagnostics.
  Status VerifyExactlyOnce() const;

  /// Execution attempts started so far (1 = no recovery happened).
  int64_t attempts() const;
  int64_t last_committed_snapshot() const;
  int32_t live_member_count() const;

 private:
  struct Member {
    int32_t index = 0;
    pid_t pid = -1;
    std::shared_ptr<net::SocketConnection> conn;
    std::string data_path;
    bool hello = false;
    bool alive = false;
    /// Plan-local node id in the current attempt; -1 = not participating.
    int32_t node_id = -1;
    bool ready = false;    // current epoch
    bool acked = false;    // current in-flight snapshot
    bool done = false;     // current epoch
    bool stopped = false;  // recovery: AttemptStopped received
  };

  enum class Phase {
    kInit,        // before Start()
    kIdle,        // members up, no job
    kStarting,    // StartJob sent, awaiting Ready from all
    kRunning,     // Go broadcast, job executing
    kRecovering,  // member died: awaiting AttemptStopped from survivors
    kDone,        // every participant reported AttemptDone
    kFailed,      // unrecoverable (no members left / internal error)
  };

  struct Event {
    const net::SocketConnection* conn = nullptr;
    bool closed = false;
    ProcMsg msg;
  };

  Status SpawnMember(int32_t index) JET_REQUIRES(mu_);
  void SupervisorLoop();
  void HandleEvent(Event e) JET_REQUIRES(mu_);
  void TimerPass() JET_REQUIRES(mu_);
  void OnMemberDied(int32_t index) JET_REQUIRES(mu_);
  void MaybeFinishRecovery() JET_REQUIRES(mu_);
  /// Starts attempt `epoch_` on all live members, restoring from
  /// `restore_snapshot` when set.
  void StartAttempt(std::optional<imdg::SnapshotId> restore_snapshot) JET_REQUIRES(mu_);
  void AbortInFlightSnapshot() JET_REQUIRES(mu_);
  void Broadcast(const ProcMsg& msg) JET_REQUIRES(mu_);
  void Fail(const std::string& why) JET_REQUIRES(mu_);
  int32_t MemberIndexOf(const net::SocketConnection* conn) JET_REQUIRES(mu_);

  Options options_;

  imdg::DataGrid grid_;
  imdg::SnapshotStore store_;

  std::unique_ptr<net::SocketServer> control_server_;
  std::thread supervisor_;

  mutable jet::Mutex mu_;
  jet::CondVar cv_;
  std::deque<Event> events_ JET_GUARDED_BY(mu_);
  std::vector<Member> members_ JET_GUARDED_BY(mu_);
  /// Accepted control connections that have not sent Hello yet.
  std::vector<std::shared_ptr<net::SocketConnection>> pending_conns_ JET_GUARDED_BY(mu_);
  Phase phase_ JET_GUARDED_BY(mu_) = Phase::kInit;
  std::string failure_ JET_GUARDED_BY(mu_);
  int64_t epoch_ JET_GUARDED_BY(mu_) = 0;  // == attempts started
  /// Monotonic across attempts — a snapshot id can never be ambiguous
  /// between the attempt that started it and the one that restored it.
  imdg::SnapshotId next_snapshot_id_ JET_GUARDED_BY(mu_) = 1;
  imdg::SnapshotId in_flight_snapshot_ JET_GUARDED_BY(mu_) = 0;  // 0 = none
  Nanos snapshot_request_time_ JET_GUARDED_BY(mu_) = 0;
  Nanos last_snapshot_done_ JET_GUARDED_BY(mu_) = 0;
  imdg::SnapshotId last_committed_ JET_GUARDED_BY(mu_) = 0;
  /// Distinct sink results: (key, window_end) -> count. Two attempts
  /// emitting the same window must agree — the exactly-once check.
  std::map<std::pair<uint64_t, Nanos>, int64_t> results_ JET_GUARDED_BY(mu_);
  Status result_conflict_ JET_GUARDED_BY(mu_);
  bool shutting_down_ JET_GUARDED_BY(mu_) = false;
  bool supervisor_exit_ JET_GUARDED_BY(mu_) = false;
};

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_PROCESS_CLUSTER_H_
