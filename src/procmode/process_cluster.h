#ifndef JETSIM_PROCMODE_PROCESS_CLUSTER_H_
#define JETSIM_PROCMODE_PROCESS_CLUSTER_H_

#include <sys/types.h>

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"
#include "net/socket_transport.h"
#include "obs/metrics_registry.h"
#include "procmode/proc_proto.h"
#include "procmode/windowed_job.h"

namespace jet::procmode {

/// Coordinator of a multi-process Jet cluster: spawns N `jet_member` OS
/// processes, serves their control connections over a Unix-domain socket,
/// and runs the job control plane that JetCluster runs in-process —
/// snapshot scheduling with an ack-timeout watchdog (§4.4), death-driven
/// recovery from the last committed snapshot, exactly-once verification of
/// sink results.
///
/// Self-healing (§4.4's continuous-operation story):
///  - **Respawn.** A dead member is re-forked under the shared RetryBackoff
///    policy (retry budget, exponential backoff with seeded jitter,
///    stability-window ladder reset, restart-storm coalescing — the same
///    vocabulary as the in-process JobSupervisor). The new process rejoins
///    via Hello, and recovery restarts the job at full DOP from the last
///    committed snapshot. Budget exhaustion is a clean terminal FAILED.
///  - **Replicated snapshots.** With snapshot_replicas > 0 the coordinator
///    mirrors each in-flight snapshot's entries to one member process and
///    commits only after that replica seals and acks — every committed
///    epoch lives in >= 2 processes, so no single process loss (including
///    the replica holder) can lose a committed epoch.
///  - **Liveness.** Members heartbeat on the control socket; a silent
///    member is suspected after `suspect_after` and SIGKILLed after
///    `down_after`, so a SIGSTOP'd (hung, not dead) member is detected and
///    replaced exactly like a crash.
///
/// Death is otherwise detected as control-connection EOF. Recovery walk:
/// abort the in-flight snapshot, broadcast StopAttempt, await
/// AttemptStopped from every survivor (draining their control streams) and
/// the rejoin of every respawning member, sweep uncommitted store state,
/// then restart the job from the last committed snapshot at epoch+1. Stale
/// data frames of the dead epoch are dropped by the members' epoch filters.
class ProcessCluster {
 public:
  /// Member-respawn policy — the PR 4 supervisor vocabulary applied to OS
  /// processes.
  struct RespawnOptions {
    bool enabled = true;
    /// Retry budget + backoff ladder shared across all members' deaths
    /// (one incident stream per cluster).
    BackoffOptions backoff;
    /// A respawned process must Hello within this long or it is killed and
    /// the failure charged again.
    Nanos rejoin_timeout = 10 * kNanosPerSecond;
    /// No deaths for this long resets the backoff ladder (flap damping).
    Nanos stability_period = 2 * kNanosPerSecond;
  };

  /// Control-plane failure detection beyond EOF: heartbeats with a
  /// suspect -> down escalation, catching hung (SIGSTOP'd) members.
  struct LivenessOptions {
    bool enabled = true;
    /// Cadence members heartbeat at (shipped to jet_member via argv).
    Nanos heartbeat_interval = 25 * kNanosPerMilli;
    /// Silence before a member is marked suspected (gauge only).
    Nanos suspect_after = 500 * kNanosPerMilli;
    /// Silence before a member is SIGKILLed and treated as dead.
    Nanos down_after = 3 * kNanosPerSecond;
  };

  struct Options {
    /// Path of the jet_member executable.
    std::string member_binary;
    /// Directory for control/data sockets; created if missing.
    std::string work_dir;
    int32_t initial_members = 3;
    int32_t threads_per_member = 1;
    WindowedJobParams job_params;
    /// Cadence of coordinator-initiated snapshots.
    Nanos snapshot_interval = 50 * kNanosPerMilli;
    /// Watchdog: abort an in-flight snapshot not fully acked in time
    /// (covers a replica that never seals, too).
    Nanos snapshot_ack_timeout = 10 * kNanosPerSecond;
    /// Deadline for member processes to connect and send Hello.
    Nanos bring_up_timeout = 30 * kNanosPerSecond;
    /// Member-process copies of each snapshot beyond the coordinator's
    /// own (0 disables replication and commits on member acks alone;
    /// currently at most 1 replica member is used).
    int32_t snapshot_replicas = 1;
    /// Shutdown() escalates to SIGKILL after this graceful window.
    Nanos graceful_exit_timeout = 10 * kNanosPerSecond;
    RespawnOptions respawn;
    LivenessOptions liveness;
    imdg::JobId job_id = 1;
  };

  /// Rendered metric snapshot, mirroring JetCluster::DiagnosticsDump.
  struct Diagnostics {
    std::string prometheus;
    std::string json;
  };

  explicit ProcessCluster(Options options);
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Binds the control socket, spawns the member processes and waits for
  /// every member's Hello. A member dying during bring-up fails fast when
  /// respawn is disabled (no stall until bring_up_timeout); with respawn
  /// enabled the bring-up succeeds once the replacement joins.
  Status Start();

  /// Starts the windowed-count job (attempt 1, no restore) on all members.
  Status SubmitWindowedJob();

  /// Blocks until the last committed snapshot id reaches `min_snapshot_id`.
  Status WaitForCommittedSnapshot(int64_t min_snapshot_id, Nanos timeout);

  /// SIGKILLs a member process — the chaos injection. Recovery is
  /// triggered by the control connection's EOF, exactly as a real crash.
  Status KillMember(int32_t member_index);

  /// SIGSTOPs a member — hung, not dead: no EOF fires, only the heartbeat
  /// timeout can notice. The liveness pass escalates it to SIGKILL.
  Status StallMember(int32_t member_index);

  /// SIGCONTs a stalled member (refuting the suspicion if it wakes before
  /// `down_after`).
  Status ResumeMember(int32_t member_index);

  /// Blocks until every member slot is alive and has said Hello — i.e.
  /// respawns caught up and the cluster is back at full membership.
  Status WaitForFullMembership(Nanos timeout);

  /// Blocks until every participant of the current attempt reported
  /// AttemptDone (across recoveries), or the job failed.
  Status AwaitJobCompletion(Nanos timeout);

  /// Shuts members down (graceful, then SIGKILL stragglers), stops the
  /// control plane. Idempotent; also run by the destructor.
  void Shutdown();

  /// Events the generator pushes per attempt-from-scratch; with recovery
  /// from a snapshot, replay makes the *distinct* result total equal it.
  int64_t expected_total() const { return WindowedJobExpectedTotal(options_.job_params); }

  /// Sum over distinct (key, window) sink results. Errors if two results
  /// for the same window disagreed — a broken exactly-once guarantee.
  Result<int64_t> DistinctTotal() const;

  /// DistinctTotal() == expected_total(), with diagnostics.
  Status VerifyExactlyOnce() const;

  /// Execution attempts started so far (1 = no recovery happened).
  int64_t attempts() const;
  int64_t last_committed_snapshot() const;
  int32_t live_member_count() const;
  /// Participants of the current attempt still alive — the running DOP.
  int32_t current_attempt_dop() const;
  /// Member respawns launched so far.
  int64_t respawn_count() const;
  /// Members currently suspected by the liveness pass.
  int32_t suspected_member_count() const;
  /// Respawn retries still allowed before terminal FAILED.
  int32_t retry_budget_remaining() const;
  /// Member index holding the replica of the last committed snapshot
  /// (-1: none committed with a replica yet).
  int32_t snapshot_replica_member() const;
  /// Replica seal rejections received so far (each aborted one snapshot).
  int64_t replica_reject_count() const;
  /// Test hook: corrupt the next replica seal's entry_count (off by one),
  /// forcing the replica to reject it. Deterministically exercises the
  /// explicit-negative-ack path without racing entry delivery.
  void CorruptNextReplicaSeal();
  /// Terminal failure reason (empty unless FAILED).
  std::string failure_message() const;

  /// Renders the coordinator's `proc.*` metrics (respawns, backoff,
  /// budget, suspected members, live members, heartbeats, replica
  /// entries) in both exporter formats.
  Diagnostics DiagnosticsDump() const;

 private:
  struct Member {
    int32_t index = 0;
    pid_t pid = -1;
    std::shared_ptr<net::SocketConnection> conn;
    std::string data_path;
    bool hello = false;
    bool alive = false;
    /// Plan-local node id in the current attempt; -1 = not participating.
    int32_t node_id = -1;
    bool ready = false;    // current epoch
    bool acked = false;    // current in-flight snapshot
    bool done = false;     // current epoch
    bool stopped = false;  // recovery: AttemptStopped received
    // -- liveness --
    Nanos last_heartbeat = 0;     // any control traffic counts
    bool suspected = false;       // heartbeat silence > suspect_after
    bool liveness_killed = false; // SIGKILL already sent (down / no rejoin)
    // -- respawn --
    bool reaped = false;          // child already waited on
    bool respawn_pending = false; // scheduled, waiting for backoff due time
    Nanos respawn_due = 0;
    Nanos spawn_time = 0;         // fork time of the current process
  };

  enum class Phase {
    kInit,        // before Start()
    kIdle,        // members up, no job
    kStarting,    // StartJob sent, awaiting Ready from all
    kRunning,     // Go broadcast, job executing
    kRecovering,  // member died: awaiting AttemptStopped + rejoins
    kDone,        // every participant reported AttemptDone
    kFailed,      // unrecoverable (budget exhausted / internal error)
  };

  struct Event {
    const net::SocketConnection* conn = nullptr;
    bool closed = false;
    ProcMsg msg;
  };

  Status SpawnMember(int32_t index) JET_REQUIRES(mu_);
  void SupervisorLoop();
  void HandleEvent(Event e) JET_REQUIRES(mu_);
  void TimerPass() JET_REQUIRES(mu_);
  /// Reaps members whose process exited without (or before) a control EOF
  /// — e.g. died before ever connecting, where no EOF will fire.
  void ReapScan() JET_REQUIRES(mu_);
  /// Suspect/down escalation on heartbeat silence.
  void LivenessPass(Nanos now) JET_REQUIRES(mu_);
  /// Re-forks members whose respawn backoff elapsed; kills members that
  /// failed to rejoin within rejoin_timeout.
  void RespawnPass(Nanos now) JET_REQUIRES(mu_);
  void OnMemberDied(int32_t index) JET_REQUIRES(mu_);
  /// Charges the respawn budget and schedules `m`'s re-fork (coalescing
  /// into an already-pending respawn's due time during a storm). Fails the
  /// cluster on budget exhaustion.
  void ScheduleRespawn(Member& m, Nanos now) JET_REQUIRES(mu_);
  void MaybeFinishRecovery() JET_REQUIRES(mu_);
  /// Starts attempt `epoch_` on all live members, restoring from
  /// `restore_snapshot` when set.
  void StartAttempt(std::optional<imdg::SnapshotId> restore_snapshot) JET_REQUIRES(mu_);
  void AbortInFlightSnapshot() JET_REQUIRES(mu_);
  /// Commits the in-flight snapshot (all member acks + replica ack, when
  /// replication is on) and broadcasts SnapshotCommitted.
  void CommitInFlight() JET_REQUIRES(mu_);
  void Broadcast(const ProcMsg& msg) JET_REQUIRES(mu_);
  void Fail(const std::string& why) JET_REQUIRES(mu_);
  int32_t MemberIndexOf(const net::SocketConnection* conn) JET_REQUIRES(mu_);
  /// Moves a dead member's connection to retired_conns_ so its pointer
  /// stays unique until its close event is processed (a freed conn's
  /// address could otherwise be reused by a respawn and alias a stale EOF
  /// onto the healthy replacement).
  void RetireConn(Member& m) JET_REQUIRES(mu_);
  Status SignalMember(int32_t member_index, int signo, const char* what);

  Options options_;

  imdg::DataGrid grid_;
  imdg::SnapshotStore store_;

  std::unique_ptr<net::SocketServer> control_server_;
  std::thread supervisor_;

  mutable jet::Mutex mu_;
  jet::CondVar cv_;
  std::deque<Event> events_ JET_GUARDED_BY(mu_);
  std::vector<Member> members_ JET_GUARDED_BY(mu_);
  /// Accepted control connections that have not sent Hello yet.
  std::vector<std::shared_ptr<net::SocketConnection>> pending_conns_ JET_GUARDED_BY(mu_);
  /// Dead members' connections, held until their close event drains.
  std::vector<std::shared_ptr<net::SocketConnection>> retired_conns_ JET_GUARDED_BY(mu_);
  Phase phase_ JET_GUARDED_BY(mu_) = Phase::kInit;
  std::string failure_ JET_GUARDED_BY(mu_);
  int64_t epoch_ JET_GUARDED_BY(mu_) = 0;  // == attempts started
  /// Monotonic across attempts — a snapshot id can never be ambiguous
  /// between the attempt that started it and the one that restored it.
  imdg::SnapshotId next_snapshot_id_ JET_GUARDED_BY(mu_) = 1;
  imdg::SnapshotId in_flight_snapshot_ JET_GUARDED_BY(mu_) = 0;  // 0 = none
  Nanos snapshot_request_time_ JET_GUARDED_BY(mu_) = 0;
  Nanos last_snapshot_done_ JET_GUARDED_BY(mu_) = 0;
  imdg::SnapshotId last_committed_ JET_GUARDED_BY(mu_) = 0;
  /// Replication state of the in-flight snapshot.
  int32_t replica_member_ JET_GUARDED_BY(mu_) = -1;
  int64_t replica_entries_sent_ JET_GUARDED_BY(mu_) = 0;
  bool replica_seal_sent_ JET_GUARDED_BY(mu_) = false;
  /// Member holding the replica of the last *committed* snapshot.
  int32_t last_replica_holder_ JET_GUARDED_BY(mu_) = -1;
  /// Replica seal rejections received (explicit negative acks).
  int64_t replica_rejects_ JET_GUARDED_BY(mu_) = 0;
  /// Test hook (CorruptNextReplicaSeal): off-by-one the next seal's count.
  bool corrupt_next_seal_ JET_GUARDED_BY(mu_) = false;
  /// Respawn policy state (one incident stream for the whole cluster).
  std::unique_ptr<RetryBackoff> respawn_backoff_ JET_GUARDED_BY(mu_);
  Nanos last_death_time_ JET_GUARDED_BY(mu_) = 0;
  int64_t respawns_ JET_GUARDED_BY(mu_) = 0;
  /// Distinct sink results: (key, window_end) -> count. Two attempts
  /// emitting the same window must agree — the exactly-once check.
  std::map<std::pair<uint64_t, Nanos>, int64_t> results_ JET_GUARDED_BY(mu_);
  Status result_conflict_ JET_GUARDED_BY(mu_);
  bool shutting_down_ JET_GUARDED_BY(mu_) = false;
  bool supervisor_exit_ JET_GUARDED_BY(mu_) = false;

  /// `proc.*` gauges/counters. Written by the supervisor thread only
  /// (single-writer contract); snapshotted by DiagnosticsDump.
  obs::MetricsRegistry registry_;
  obs::Counter respawns_counter_;        // proc.respawns
  obs::Counter heartbeats_counter_;      // proc.heartbeats
  obs::Counter replica_entries_counter_; // proc.replica_entries
  obs::Counter replica_rejects_counter_; // proc.replica_rejects
  obs::Gauge backoff_gauge_;             // proc.backoff_nanos (last delay)
  obs::Gauge budget_gauge_;              // proc.retry_budget_remaining
  obs::Gauge suspected_gauge_;           // proc.suspected_members
  obs::Gauge live_members_gauge_;        // proc.live_members
};

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_PROCESS_CLUSTER_H_
