#include "procmode/proc_proto.h"

#include "common/debug_check.h"
#include "net/wire_format.h"

namespace jet::procmode {
namespace {

void EncodeStateEntryFields(const ProcMsg& msg, BytesWriter* w) {
  w->WriteVarI64(msg.snapshot_id);
  w->WriteVarU64(static_cast<uint64_t>(msg.vertex_id));
  w->WriteVarU64(static_cast<uint64_t>(msg.writer_index));
  w->WriteVarU64(msg.key_hash);
  w->WriteBytes(msg.key);
  w->WriteBytes(msg.value);
}

Status DecodeStateEntryFields(BytesReader* r, ProcMsg* msg) {
  uint64_t u = 0;
  JET_RETURN_IF_ERROR(r->ReadVarI64(&msg->snapshot_id));
  JET_RETURN_IF_ERROR(r->ReadVarU64(&u));
  msg->vertex_id = static_cast<int32_t>(u);
  JET_RETURN_IF_ERROR(r->ReadVarU64(&u));
  msg->writer_index = static_cast<int32_t>(u);
  JET_RETURN_IF_ERROR(r->ReadVarU64(&msg->key_hash));
  JET_RETURN_IF_ERROR(r->ReadBytes(&msg->key));
  JET_RETURN_IF_ERROR(r->ReadBytes(&msg->value));
  return Status::OK();
}

}  // namespace

Bytes EncodeControlMessage(const ProcMsg& msg) {
  BytesWriter body;
  body.WriteU8(static_cast<uint8_t>(msg.type));
  body.WriteVarI64(msg.epoch);
  switch (msg.type) {
    case ProcMsgType::kHello:
      body.WriteVarU64(static_cast<uint64_t>(msg.member_index));
      body.WriteVarI64(msg.pid);
      body.WriteString(msg.data_path);
      break;
    case ProcMsgType::kStartJob:
      body.WriteString(msg.job_name);
      body.WriteVarU64(static_cast<uint64_t>(msg.node_id));
      body.WriteVarU64(static_cast<uint64_t>(msg.node_count));
      body.WriteI64(msg.clock_anchor);
      body.WriteVarU64(static_cast<uint64_t>(msg.threads));
      body.WriteDouble(msg.events_per_second);
      body.WriteVarI64(msg.duration);
      body.WriteVarI64(msg.key_count);
      body.WriteVarI64(msg.window_size);
      body.WriteVarI64(msg.watermark_interval);
      body.WriteVarI64(msg.restore_count);
      body.WriteVarU64(msg.data_paths.size());
      for (const auto& p : msg.data_paths) body.WriteString(p);
      break;
    case ProcMsgType::kRestoreEntry:
    case ProcMsgType::kSnapshotEntry:
    case ProcMsgType::kSnapshotReplicaEntry:
      EncodeStateEntryFields(msg, &body);
      break;
    case ProcMsgType::kSnapshotRequest:
    case ProcMsgType::kSnapshotAck:
    case ProcMsgType::kSnapshotCommitted:
    case ProcMsgType::kSnapshotAborted:
    case ProcMsgType::kSnapshotReplicaAck:
      body.WriteVarI64(msg.snapshot_id);
      break;
    case ProcMsgType::kSnapshotReplicaSeal:
    case ProcMsgType::kSnapshotReplicaReject:
      body.WriteVarI64(msg.snapshot_id);
      body.WriteVarI64(msg.entry_count);
      break;
    case ProcMsgType::kSinkResult:
      body.WriteVarU64(msg.result_key);
      body.WriteVarI64(msg.window_start);
      body.WriteVarI64(msg.window_end);
      body.WriteVarI64(msg.result_value);
      break;
    case ProcMsgType::kReady:
    case ProcMsgType::kGo:
    case ProcMsgType::kStopAttempt:
    case ProcMsgType::kAttemptStopped:
    case ProcMsgType::kAttemptDone:
    case ProcMsgType::kShutdown:
    case ProcMsgType::kHeartbeat:
      break;  // epoch alone
  }
  BytesWriter frame;
  JET_DCHECK_OK(net::EncodeControlFrame(body.Take(), &frame));
  return frame.Take();
}

Result<ProcMsg> DecodeControlMessage(const Bytes& frame) {
  auto decoded = net::DecodeFrame(frame);
  JET_RETURN_IF_ERROR(decoded.status());
  if (decoded->header.type != net::FrameType::kControl) {
    return InvalidArgumentError("control socket received a non-control frame");
  }
  BytesReader r(decoded->control_body);
  uint8_t type_byte = 0;
  JET_RETURN_IF_ERROR(r.ReadU8(&type_byte));
  if (type_byte < static_cast<uint8_t>(ProcMsgType::kHello) ||
      type_byte > static_cast<uint8_t>(ProcMsgType::kSnapshotReplicaReject)) {
    return InvalidArgumentError("unknown control message type " + std::to_string(type_byte));
  }
  ProcMsg msg;
  msg.type = static_cast<ProcMsgType>(type_byte);
  JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.epoch));
  uint64_t u = 0;
  switch (msg.type) {
    case ProcMsgType::kHello:
      JET_RETURN_IF_ERROR(r.ReadVarU64(&u));
      msg.member_index = static_cast<int32_t>(u);
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.pid));
      JET_RETURN_IF_ERROR(r.ReadString(&msg.data_path));
      break;
    case ProcMsgType::kStartJob: {
      JET_RETURN_IF_ERROR(r.ReadString(&msg.job_name));
      JET_RETURN_IF_ERROR(r.ReadVarU64(&u));
      msg.node_id = static_cast<int32_t>(u);
      JET_RETURN_IF_ERROR(r.ReadVarU64(&u));
      msg.node_count = static_cast<int32_t>(u);
      JET_RETURN_IF_ERROR(r.ReadI64(&msg.clock_anchor));
      JET_RETURN_IF_ERROR(r.ReadVarU64(&u));
      msg.threads = static_cast<int32_t>(u);
      JET_RETURN_IF_ERROR(r.ReadDouble(&msg.events_per_second));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.duration));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.key_count));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.window_size));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.watermark_interval));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.restore_count));
      uint64_t paths = 0;
      JET_RETURN_IF_ERROR(r.ReadVarU64(&paths));
      if (paths > r.Remaining()) {
        return InvalidArgumentError("data path count exceeds message size");
      }
      msg.data_paths.reserve(paths);
      for (uint64_t i = 0; i < paths; ++i) {
        std::string p;
        JET_RETURN_IF_ERROR(r.ReadString(&p));
        msg.data_paths.push_back(std::move(p));
      }
      break;
    }
    case ProcMsgType::kRestoreEntry:
    case ProcMsgType::kSnapshotEntry:
    case ProcMsgType::kSnapshotReplicaEntry:
      JET_RETURN_IF_ERROR(DecodeStateEntryFields(&r, &msg));
      break;
    case ProcMsgType::kSnapshotRequest:
    case ProcMsgType::kSnapshotAck:
    case ProcMsgType::kSnapshotCommitted:
    case ProcMsgType::kSnapshotAborted:
    case ProcMsgType::kSnapshotReplicaAck:
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.snapshot_id));
      break;
    case ProcMsgType::kSnapshotReplicaSeal:
    case ProcMsgType::kSnapshotReplicaReject:
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.snapshot_id));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.entry_count));
      break;
    case ProcMsgType::kSinkResult:
      JET_RETURN_IF_ERROR(r.ReadVarU64(&msg.result_key));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.window_start));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.window_end));
      JET_RETURN_IF_ERROR(r.ReadVarI64(&msg.result_value));
      break;
    case ProcMsgType::kReady:
    case ProcMsgType::kGo:
    case ProcMsgType::kStopAttempt:
    case ProcMsgType::kAttemptStopped:
    case ProcMsgType::kAttemptDone:
    case ProcMsgType::kShutdown:
    case ProcMsgType::kHeartbeat:
      break;
  }
  if (!r.AtEnd()) return InvalidArgumentError("control message has trailing bytes");
  return msg;
}

}  // namespace jet::procmode
