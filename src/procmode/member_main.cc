// jet_member: one Jet cluster member as an OS process.
//
// Usage: jet_member <control_socket_path> <member_index> <work_dir>
//                   [heartbeat_interval_ms]
//
// Spawned by ProcessCluster (or by hand for debugging); connects to the
// coordinator's control socket, brings up its data socket and serves
// execution attempts until the coordinator says Shutdown — or disappears,
// in which case the member exits rather than linger as an orphan.
// heartbeat_interval_ms (default 25, 0 disables) is the cadence of the
// liveness heartbeats the coordinator's suspect/down detection watches.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "procmode/process_member.h"

int main(int argc, char** argv) {
  if (argc != 4 && argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <control_socket_path> <member_index> <work_dir> "
                 "[heartbeat_interval_ms]\n",
                 argv[0]);
    return 2;
  }
  jet::procmode::ProcessMember::Options options;
  options.control_path = argv[1];
  options.member_index = static_cast<int32_t>(std::strtol(argv[2], nullptr, 10));
  options.work_dir = argv[3];
  if (argc == 5) {
    options.heartbeat_interval =
        std::strtol(argv[4], nullptr, 10) * jet::kNanosPerMilli;
  }

  jet::procmode::ProcessMember member(options);
  jet::Status status = member.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "jet_member %d exiting: %s\n", options.member_index,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
