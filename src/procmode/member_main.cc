// jet_member: one Jet cluster member as an OS process.
//
// Usage: jet_member <control_socket_path> <member_index> <work_dir>
//
// Spawned by ProcessCluster (or by hand for debugging); connects to the
// coordinator's control socket, brings up its data socket and serves
// execution attempts until the coordinator says Shutdown — or disappears,
// in which case the member exits rather than linger as an orphan.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "procmode/process_member.h"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <control_socket_path> <member_index> <work_dir>\n",
                 argv[0]);
    return 2;
  }
  jet::procmode::ProcessMember::Options options;
  options.control_path = argv[1];
  options.member_index = static_cast<int32_t>(std::strtol(argv[2], nullptr, 10));
  options.work_dir = argv[3];

  jet::procmode::ProcessMember member(options);
  jet::Status status = member.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "jet_member %d exiting: %s\n", options.member_index,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
