#ifndef JETSIM_PROCMODE_REPLICA_STORE_H_
#define JETSIM_PROCMODE_REPLICA_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/thread_annotations.h"
#include "imdg/snapshot_store.h"

namespace jet::procmode {

/// Member-side mirror of in-flight snapshot state. The coordinator streams
/// every kSnapshotEntry it receives for the current snapshot to one replica
/// member as kSnapshotReplicaEntry, then seals with the total entry count;
/// the replica acks only when the count matches, and the coordinator
/// commits only after the ack. Result: every committed epoch lives in the
/// coordinator *and* one member process, so no single process loss
/// (including the replica holder) can lose a committed snapshot.
///
/// All calls arrive on the member's control-socket I/O thread (entries and
/// seals are FIFO on one socket), but Shutdown-time introspection can race
/// it, hence the mutex. Work per call is bounded (one map insert), safe for
/// an I/O-thread frame handler.
class ReplicaStore {
 public:
  /// Buffers one entry of an in-flight snapshot.
  void AddEntry(int64_t snapshot_id, imdg::SnapshotStateEntry entry) {
    MutexLock lock(mu_);
    pending_[snapshot_id].push_back(std::move(entry));
  }

  /// Seals `snapshot_id`: returns true (ack the coordinator) when exactly
  /// `expected_entries` were received, false on a count mismatch (the
  /// member then sends an explicit kSnapshotReplicaReject so the
  /// coordinator aborts the snapshot immediately instead of burning its
  /// ack-timeout watchdog on the hole).
  bool Seal(int64_t snapshot_id, int64_t expected_entries) {
    MutexLock lock(mu_);
    auto it = pending_.find(snapshot_id);
    int64_t got = it == pending_.end()
                      ? 0
                      : static_cast<int64_t>(it->second.size());
    return got == expected_entries;
  }

  /// The coordinator committed `snapshot_id`: promote it and retain only
  /// the last two committed snapshots (mirrors SnapshotStore retention).
  void OnCommitted(int64_t snapshot_id) {
    MutexLock lock(mu_);
    auto it = pending_.find(snapshot_id);
    if (it != pending_.end()) {
      committed_[snapshot_id] = std::move(it->second);
      pending_.erase(it);
    } else {
      committed_.emplace(snapshot_id, std::vector<imdg::SnapshotStateEntry>{});
    }
    while (committed_.size() > 2) committed_.erase(committed_.begin());
    // Anything older still pending was abandoned by the coordinator.
    pending_.erase(pending_.begin(), pending_.lower_bound(snapshot_id));
  }

  /// The coordinator aborted `snapshot_id` (watchdog): drop its buffer.
  void OnAborted(int64_t snapshot_id) {
    MutexLock lock(mu_);
    pending_.erase(snapshot_id);
  }

  /// Entries buffered for a not-yet-committed snapshot (0 when none) —
  /// what a seal-mismatch reject reports back to the coordinator.
  int64_t pending_entry_count(int64_t snapshot_id) const {
    MutexLock lock(mu_);
    auto it = pending_.find(snapshot_id);
    return it == pending_.end() ? 0 : static_cast<int64_t>(it->second.size());
  }

  int64_t committed_entry_count(int64_t snapshot_id) const {
    MutexLock lock(mu_);
    auto it = committed_.find(snapshot_id);
    return it == committed_.end() ? -1 : static_cast<int64_t>(it->second.size());
  }

  int64_t last_committed() const {
    MutexLock lock(mu_);
    return committed_.empty() ? 0 : committed_.rbegin()->first;
  }

 private:
  mutable Mutex mu_;
  std::map<int64_t, std::vector<imdg::SnapshotStateEntry>> pending_
      JET_GUARDED_BY(mu_);
  std::map<int64_t, std::vector<imdg::SnapshotStateEntry>> committed_
      JET_GUARDED_BY(mu_);
};

}  // namespace jet::procmode

#endif  // JETSIM_PROCMODE_REPLICA_STORE_H_
