#include "pipeline/planner.h"

#include <map>

namespace jet::pipeline {

namespace {

// Returns, for every stateless node, the id of the chain head it fuses
// into, or its own id when it starts a chain (or fusion is off).
std::vector<int32_t> ComputeFusionHeads(const StageGraph& graph, bool enable_fusion) {
  const auto& nodes = graph.nodes();
  std::vector<int32_t> head(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) head[i] = static_cast<int32_t>(i);
  if (!enable_fusion) return head;
  // Nodes are in topological creation order, so a single pass suffices.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const StageNode& node = nodes[i];
    if (node.kind != StageNode::Kind::kStateless) continue;
    if (node.inputs.size() != 1) continue;
    const StageNode::Input& in = node.inputs[0];
    if (in.distributed || in.routing != core::RoutingPolicy::kUnicast) continue;
    // Out-of-range input references are rejected by BuildDag's edge pass;
    // don't read through them here.
    if (in.node < 0 || in.node >= static_cast<int32_t>(nodes.size())) continue;
    const StageNode& parent = graph.nodes()[static_cast<size_t>(in.node)];
    if (parent.kind != StageNode::Kind::kStateless) continue;
    if (graph.ConsumerCount(in.node) != 1) continue;
    if (parent.local_parallelism != node.local_parallelism) continue;
    head[i] = head[static_cast<size_t>(in.node)];
  }
  return head;
}

}  // namespace

Result<core::Dag> BuildDag(const StageGraph& graph, const PlanOptions& options) {
  const auto& nodes = graph.nodes();
  if (nodes.empty()) return InvalidArgumentError("empty pipeline");

  std::vector<int32_t> fusion_head = ComputeFusionHeads(graph, options.enable_fusion);

  // Collect the transform chain of every fusion head.
  std::map<int32_t, std::vector<ItemTransformFn>> chains;
  std::map<int32_t, std::string> chain_names;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind != StageNode::Kind::kStateless) continue;
    int32_t h = fusion_head[i];
    chains[h].push_back(nodes[i].transform);
    if (chain_names[h].empty()) {
      chain_names[h] = nodes[i].name;
    } else {
      chain_names[h] += "+" + nodes[i].name;
    }
  }

  core::Dag dag;
  // Vertex each stage node maps to: for fused chains, all members map to
  // the chain vertex. Aggregates map to (accumulate, combine): in_vertex
  // receives the input edge, out_vertex feeds consumers.
  struct VertexPair {
    core::VertexId in = -1;
    core::VertexId out = -1;
  };
  std::vector<VertexPair> vertex_of(nodes.size());

  for (size_t i = 0; i < nodes.size(); ++i) {
    const StageNode& node = nodes[i];
    if (node.kind == StageNode::Kind::kStateless) {
      int32_t h = fusion_head[i];
      if (h != static_cast<int32_t>(i)) {
        // Fused into an earlier chain; share its vertex.
        vertex_of[i] = vertex_of[static_cast<size_t>(h)];
        continue;
      }
      auto chain = chains[h];
      core::VertexId v = dag.AddVertex(
          chain_names[h],
          [chain](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
            return std::make_unique<FusedStatelessP>(chain);
          },
          node.local_parallelism);
      vertex_of[i] = {v, v};
      continue;
    }
    if (node.kind == StageNode::Kind::kAggregate) {
      core::VertexId acc =
          dag.AddVertex(node.name + ".accumulate", node.supplier, node.local_parallelism);
      core::VertexId comb =
          dag.AddVertex(node.name + ".combine", node.supplier2, node.local_parallelism);
      // The stage boundary of two-stage aggregation: partials travel over a
      // distributed partitioned edge to the key's owner (§3.1).
      auto& e = dag.AddEdge(acc, comb);
      e.routing = core::RoutingPolicy::kPartitioned;
      e.distributed = true;
      vertex_of[i] = {acc, comb};
      continue;
    }
    core::VertexId v = dag.AddVertex(node.name, node.supplier, node.local_parallelism);
    vertex_of[i] = {v, v};
  }

  // Input edges. For fused chains, only the head's inputs materialize.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const StageNode& node = nodes[i];
    if (node.kind == StageNode::Kind::kStateless &&
        fusion_head[i] != static_cast<int32_t>(i)) {
      continue;  // internal to a fused chain
    }
    for (const StageNode::Input& in : node.inputs) {
      if (in.node < 0 || in.node >= static_cast<int32_t>(nodes.size())) {
        return InvalidArgumentError("stage '" + node.name +
                                    "' references an unknown input stage");
      }
      core::VertexId from = vertex_of[static_cast<size_t>(in.node)].out;
      core::VertexId to = vertex_of[i].in;
      auto& e = dag.AddEdge(from, to);
      e.routing = in.routing;
      e.distributed = in.distributed;
      e.priority = in.priority;
      if (options.isolate_local_edges && e.routing == core::RoutingPolicy::kUnicast &&
          !e.distributed &&
          dag.vertex(from).local_parallelism == dag.vertex(to).local_parallelism) {
        e.routing = core::RoutingPolicy::kIsolated;
      }
    }
  }

  JET_RETURN_IF_ERROR(dag.Validate());
  return dag;
}

}  // namespace jet::pipeline
