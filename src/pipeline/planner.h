#ifndef JETSIM_PIPELINE_PLANNER_H_
#define JETSIM_PIPELINE_PLANNER_H_

#include <deque>

#include "common/status.h"
#include "core/dag.h"
#include "core/processor.h"
#include "pipeline/stage_graph.h"

namespace jet::pipeline {

/// Planner knobs, exposed mainly for the fusion ablation benchmark.
struct PlanOptions {
  /// Fuse chains of stateless stages into one processor (§3.1: "it fuses
  /// (a.k.a. operator chaining) consecutive stateless operators").
  bool enable_fusion = true;
  /// Upgrade local unicast edges between equal-parallelism vertices to
  /// isolated edges (producer i feeds consumer i), keeping the data path
  /// core-local (§3.1/§5 "optimized data path").
  bool isolate_local_edges = true;
};

/// Executes a fused chain of stateless transforms as one processor. Items
/// pass through the chain's function calls without touching any queue —
/// this is what operator fusion buys (§3.1).
class FusedStatelessP final : public core::Processor {
 public:
  explicit FusedStatelessP(std::vector<ItemTransformFn> chain)
      : chain_(std::move(chain)) {}

  void Process(int ordinal, core::Inbox* inbox) override {
    (void)ordinal;
    if (!FlushPending()) return;
    while (!inbox->Empty()) {
      ApplyChain(*inbox->Peek());
      inbox->RemoveFront();
      if (!FlushPending()) return;
    }
  }

 private:
  void ApplyChain(const core::Item& in) {
    scratch_a_.clear();
    scratch_a_.push_back(in);
    for (const ItemTransformFn& fn : chain_) {
      scratch_b_.clear();
      for (const core::Item& item : scratch_a_) fn(item, &scratch_b_);
      scratch_a_.swap(scratch_b_);
    }
    for (auto& item : scratch_a_) pending_.push_back(std::move(item));
  }

  bool FlushPending() {
    while (!pending_.empty()) {
      if (!ctx()->outbox->OfferToAll(pending_.front())) return false;
      pending_.pop_front();
    }
    return true;
  }

  std::vector<ItemTransformFn> chain_;
  std::vector<core::Item> scratch_a_;
  std::vector<core::Item> scratch_b_;
  std::deque<core::Item> pending_;
};

/// Lowers a stage graph to a core::Dag: fuses stateless chains, expands
/// keyed windowed aggregates into the two-stage accumulate/combine pair
/// (§3.1 "local partial results followed by global combining"), and picks
/// edge routing.
Result<core::Dag> BuildDag(const StageGraph& graph, const PlanOptions& options = {});

}  // namespace jet::pipeline

#endif  // JETSIM_PIPELINE_PLANNER_H_
