#ifndef JETSIM_PIPELINE_STAGE_GRAPH_H_
#define JETSIM_PIPELINE_STAGE_GRAPH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dag.h"
#include "core/item.h"

namespace jet::pipeline {

/// Item-level transform of a stateless stage: consumes `in` and appends any
/// number of output items to `out`. Stored type-erased so the planner can
/// fuse consecutive stateless stages into one processor (§3.1 operator
/// fusion) regardless of their static types.
using ItemTransformFn =
    std::function<void(const core::Item& in, std::vector<core::Item>* out)>;

/// Untyped stage-graph node. The typed Pipeline API (pipeline.h) is a
/// compile-time-checked veneer over this representation; the planner
/// (planner.h) lowers it to a core::Dag.
struct StageNode {
  enum class Kind {
    kStreamSource,  ///< infinite source (supplier)
    kBatchSource,   ///< finite source (supplier)
    kStateless,     ///< map/filter/flatMap (transform; fusable)
    kAggregate,     ///< keyed windowed aggregate (two-stage suppliers)
    kHashJoin,      ///< batch build (input 0) + stream probe (input 1)
    kWindowJoin,    ///< stream-stream windowed equi-join
    kRolling,       ///< keyed rolling aggregate (single stateful vertex)
    kSink,          ///< terminal stage (supplier)
  };

  /// How a stage's input edge routes (chosen by the API/planner).
  struct Input {
    int32_t node = -1;
    core::RoutingPolicy routing = core::RoutingPolicy::kUnicast;
    bool distributed = false;
    int32_t priority = 0;
  };

  Kind kind = Kind::kStateless;
  std::string name;
  std::vector<Input> inputs;
  /// Parallelism per node (-1 = engine default).
  int32_t local_parallelism = -1;

  /// Stateless stages: the fusable transform.
  ItemTransformFn transform;

  /// Non-stateless stages: processor factory. Aggregates use `supplier`
  /// for the accumulate stage and `supplier2` for the combine stage.
  core::ProcessorSupplier supplier;
  core::ProcessorSupplier supplier2;
};

/// The mutable stage graph a Pipeline builds up.
class StageGraph {
 public:
  int32_t AddNode(StageNode node) {
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size()) - 1;
  }

  StageNode& node(int32_t id) { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<StageNode>& nodes() const { return nodes_; }

  /// Number of stages consuming `id`'s output.
  int32_t ConsumerCount(int32_t id) const {
    int32_t n = 0;
    for (const auto& node : nodes_) {
      for (const auto& in : node.inputs) {
        if (in.node == id) ++n;
      }
    }
    return n;
  }

 private:
  std::vector<StageNode> nodes_;
};

}  // namespace jet::pipeline

#endif  // JETSIM_PIPELINE_STAGE_GRAPH_H_
