#ifndef JETSIM_PIPELINE_PIPELINE_H_
#define JETSIM_PIPELINE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/processors_basic.h"
#include "core/processors_external.h"
#include "core/processors_join.h"
#include "core/processors_window.h"
#include "pipeline/planner.h"
#include "pipeline/stage_graph.h"

namespace jet::pipeline {

template <typename T>
class StreamStage;
template <typename T>
class BatchStage;
template <typename T>
class KeyedStream;
template <typename T>
class WindowedStream;
template <typename T>
class SessionWindowedStream;

/// The high-level, type-safe Pipeline API (§2.1): a fluent builder over
/// typed stages that lowers to the Core API's DAG (§2.2) via the planner.
/// Mirrors Listing 1/2 of the paper in C++:
///
///   Pipeline p;
///   auto lines = p.ReadFrom<std::string>("lines", gen, opt);
///   lines.FlatMap<Word>("tokenize", ...)
///        .GroupingKey([](const Word& w) { return w.hash; })
///        .Window(WindowDef::Tumbling(1s))
///        .Aggregate("count", CountingAggregate<Word>())
///        .WriteTo("sink", ...);
///   auto dag = p.ToDag();
class Pipeline {
 public:
  Pipeline() = default;

  /// Adds an infinite generator source (rate-controlled, replayable; see
  /// GeneratorSourceP).
  template <typename T>
  StreamStage<T> ReadFrom(std::string name,
                          typename core::GeneratorSourceP<T>::GenFn gen,
                          typename core::GeneratorSourceP<T>::Options options,
                          int32_t local_parallelism = 1);

  /// Adds a custom source from a processor supplier. The processor must
  /// emit items of type T.
  template <typename T>
  StreamStage<T> ReadFromSupplier(std::string name, core::ProcessorSupplier supplier,
                                  int32_t local_parallelism = 1);

  /// Adds a finite batch source from a fixed record list (value, key hash).
  template <typename T>
  BatchStage<T> ReadFromList(std::string name,
                             std::vector<std::pair<T, uint64_t>> records,
                             int32_t local_parallelism = 1);

  /// Lowers the pipeline to an executable core DAG.
  Result<core::Dag> ToDag(const PlanOptions& options = {}) const {
    return BuildDag(graph_, options);
  }

  StageGraph& graph() { return graph_; }

 private:
  template <typename T>
  friend class StreamStage;
  template <typename T>
  friend class BatchStage;
  template <typename T>
  friend class KeyedStream;
  template <typename T>
  friend class WindowedStream;
  template <typename T>
  friend class SessionWindowedStream;

  StageGraph graph_;
};

/// A typed handle to a streaming stage (§2.1: "streaming stages assume
/// that their inputs are infinite").
template <typename T>
class StreamStage {
 public:
  StreamStage(Pipeline* pipeline, int32_t node) : pipeline_(pipeline), node_(node) {}

  /// 1:1 transform.
  template <typename R>
  StreamStage<R> Map(std::string name, std::function<R(const T&)> fn) {
    return AddStateless<R>(std::move(name),
                           [fn](const core::Item& in, std::vector<core::Item>* out) {
                             out->push_back(core::Item::Data<R>(
                                 fn(in.payload.As<T>()), in.timestamp, in.key_hash));
                           });
  }

  /// Keeps only items satisfying the predicate.
  StreamStage<T> Filter(std::string name, std::function<bool(const T&)> pred) {
    return AddStateless<T>(std::move(name),
                           [pred](const core::Item& in, std::vector<core::Item>* out) {
                             if (pred(in.payload.As<T>())) out->push_back(in);
                           });
  }

  /// 1:N transform.
  template <typename R>
  StreamStage<R> FlatMap(std::string name,
                         std::function<void(const T&, std::vector<R>*)> fn) {
    return AddStateless<R>(
        std::move(name), [fn](const core::Item& in, std::vector<core::Item>* out) {
          std::vector<R> results;
          fn(in.payload.As<T>(), &results);
          for (auto& r : results) {
            out->push_back(core::Item::Data<R>(std::move(r), in.timestamp, in.key_hash));
          }
        });
  }

  /// Map that also re-keys the stream (sets the routing hash from the new
  /// value).
  template <typename R>
  StreamStage<R> MapRekey(std::string name, std::function<R(const T&)> fn,
                          std::function<uint64_t(const R&)> key_of) {
    return AddStateless<R>(std::move(name),
                           [fn, key_of](const core::Item& in, std::vector<core::Item>* out) {
                             R value = fn(in.payload.As<T>());
                             uint64_t hash = HashU64(key_of(value));
                             out->push_back(
                                 core::Item::Data<R>(std::move(value), in.timestamp, hash));
                           });
  }

  /// Starts a keyed aggregation: items with equal keys are processed by
  /// the same (cluster-wide) owner.
  KeyedStream<T> GroupingKey(std::function<uint64_t(const T&)> key_fn);

  /// Hash-join against a batch build side (§2.1 Listing 2): the build
  /// stage's records are broadcast to every instance and fully loaded
  /// before the first probe.
  template <typename B, typename R>
  StreamStage<R> HashJoin(std::string name, BatchStage<B> build,
                          std::function<uint64_t(const B&)> build_key,
                          std::function<uint64_t(const T&)> probe_key,
                          std::function<void(const T&, const std::vector<B>&,
                                             std::vector<R>*)>
                              join);

  /// Windowed stream-stream equi-join (tumbling window of `window_size`).
  /// Both sides are partitioned by their join key.
  template <typename U, typename R>
  StreamStage<R> WindowJoin(std::string name, StreamStage<U> right,
                            std::function<uint64_t(const T&)> left_key,
                            std::function<uint64_t(const U&)> right_key,
                            std::function<R(const T&, const U&)> join,
                            Nanos window_size);

  /// Terminal: custom sink processor.
  void WriteTo(std::string name, core::ProcessorSupplier supplier,
               int32_t local_parallelism = 1) {
    StageNode node;
    node.kind = StageNode::Kind::kSink;
    node.name = std::move(name);
    node.supplier = std::move(supplier);
    node.local_parallelism = local_parallelism;
    node.inputs.push_back(StageNode::Input{node_, core::RoutingPolicy::kUnicast,
                                           /*distributed=*/false, /*priority=*/0});
    pipeline_->graph_.AddNode(std::move(node));
  }

  /// Terminal: collect all values into a shared, thread-safe collector.
  std::shared_ptr<core::SyncCollector<T>> CollectTo(std::string name,
                                                    int32_t local_parallelism = 1) {
    auto collector = std::make_shared<core::SyncCollector<T>>();
    WriteTo(
        std::move(name),
        [collector](const core::ProcessorMeta&) {
          return std::make_unique<core::CollectSinkP<T>>(collector);
        },
        local_parallelism);
    return collector;
  }

  /// Terminal: record per-item latency (now - item timestamp) into the
  /// recorder — the §7.1 metric.
  void WriteToLatencySink(std::string name, core::LatencyRecorder* recorder,
                          int32_t local_parallelism = 1) {
    WriteTo(
        std::move(name),
        [recorder](const core::ProcessorMeta&) {
          return std::make_unique<core::LatencySinkP>(recorder);
        },
        local_parallelism);
  }

  /// Terminal: count items.
  std::shared_ptr<std::atomic<int64_t>> WriteToCountSink(std::string name,
                                                         int32_t local_parallelism = 1) {
    auto counter = std::make_shared<std::atomic<int64_t>>(0);
    WriteTo(
        std::move(name),
        [counter](const core::ProcessorMeta&) {
          return std::make_unique<core::CountSinkP<T>>(counter);
        },
        local_parallelism);
    return counter;
  }

  int32_t node() const { return node_; }
  Pipeline* pipeline() const { return pipeline_; }

 private:
  template <typename U>
  friend class StreamStage;

  template <typename R>
  StreamStage<R> AddStateless(std::string name, ItemTransformFn transform) {
    StageNode node;
    node.kind = StageNode::Kind::kStateless;
    node.name = std::move(name);
    node.transform = std::move(transform);
    node.inputs.push_back(StageNode::Input{node_, core::RoutingPolicy::kUnicast,
                                           /*distributed=*/false, /*priority=*/0});
    int32_t id = pipeline_->graph_.AddNode(std::move(node));
    return StreamStage<R>(pipeline_, id);
  }

  Pipeline* pipeline_;
  int32_t node_;
};

/// A typed handle to a finite (batch) stage, usable as a hash-join build
/// side (§2.1: hybrid batch & streaming).
template <typename T>
class BatchStage {
 public:
  BatchStage(Pipeline* pipeline, int32_t node) : pipeline_(pipeline), node_(node) {}

  int32_t node() const { return node_; }
  Pipeline* pipeline() const { return pipeline_; }

 private:
  Pipeline* pipeline_;
  int32_t node_;
};

/// A stream with an assigned grouping key, awaiting a window definition.
template <typename T>
class KeyedStream {
 public:
  KeyedStream(Pipeline* pipeline, int32_t node, std::function<uint64_t(const T&)> key_fn)
      : pipeline_(pipeline), node_(node), key_fn_(std::move(key_fn)) {}

  WindowedStream<T> Window(core::WindowDef window) {
    return WindowedStream<T>(pipeline_, node_, key_fn_, window);
  }

  /// Session windows: per-key windows separated by inactivity gaps.
  SessionWindowedStream<T> SessionWindow(Nanos gap) {
    return SessionWindowedStream<T>(pipeline_, node_, key_fn_, gap);
  }

  /// Non-windowed rolling aggregation: the running value per key refreshes
  /// on every event (Jet's rollingAggregate). The stage's input is
  /// partitioned (and distributed) by the grouping key.
  template <typename Acc, typename Res>
  StreamStage<core::RollingResult<Res>> RollingAggregate(
      std::string name, core::AggregateOperation<T, Acc, Res> op) {
    StageNode stage;
    stage.kind = StageNode::Kind::kRolling;
    stage.name = std::move(name);
    auto key_fn = key_fn_;
    stage.supplier = [op, key_fn](const core::ProcessorMeta&)
        -> std::unique_ptr<core::Processor> {
      return std::make_unique<core::RollingAggregateP<T, Acc, Res>>(op, key_fn);
    };
    // Route by key so each key has one owner cluster-wide. The upstream
    // items must carry the key hash; insert a re-keying stage to be safe.
    StageNode rekey;
    rekey.kind = StageNode::Kind::kStateless;
    rekey.name = stage.name + ".key";
    rekey.transform = [key_fn](const core::Item& in, std::vector<core::Item>* out) {
      core::Item copy = in;
      copy.key_hash = HashU64(key_fn(in.payload.As<T>()));
      out->push_back(std::move(copy));
    };
    rekey.inputs.push_back(StageNode::Input{node_, core::RoutingPolicy::kUnicast,
                                            /*distributed=*/false, /*priority=*/0});
    int32_t rekey_id = pipeline_->graph_.AddNode(std::move(rekey));
    stage.inputs.push_back(StageNode::Input{rekey_id, core::RoutingPolicy::kPartitioned,
                                            /*distributed=*/true, /*priority=*/0});
    int32_t id = pipeline_->graph_.AddNode(std::move(stage));
    return StreamStage<core::RollingResult<Res>>(pipeline_, id);
  }

 private:
  Pipeline* pipeline_;
  int32_t node_;
  std::function<uint64_t(const T&)> key_fn_;
};

/// A keyed, windowed stream awaiting an aggregate operation. Lowers to the
/// two-stage accumulate/combine pair.
template <typename T>
class WindowedStream {
 public:
  WindowedStream(Pipeline* pipeline, int32_t node,
                 std::function<uint64_t(const T&)> key_fn, core::WindowDef window)
      : pipeline_(pipeline), node_(node), key_fn_(std::move(key_fn)), window_(window) {}

  /// Applies `op` per key per window. The result stream is keyed by the
  /// grouping key's hash and timestamped with each window's end.
  template <typename Acc, typename Res>
  StreamStage<core::WindowResult<Res>> Aggregate(std::string name,
                                                 core::AggregateOperation<T, Acc, Res> op) {
    StageNode stage;
    stage.kind = StageNode::Kind::kAggregate;
    stage.name = std::move(name);
    auto key_fn = key_fn_;
    auto window = window_;
    stage.supplier = [op, key_fn, window](const core::ProcessorMeta&)
        -> std::unique_ptr<core::Processor> {
      return std::make_unique<core::AccumulateByFrameP<T, Acc, Res>>(op, key_fn, window);
    };
    stage.supplier2 = [op, window](const core::ProcessorMeta&)
        -> std::unique_ptr<core::Processor> {
      return std::make_unique<core::CombineFramesP<T, Acc, Res>>(op, window);
    };
    stage.inputs.push_back(StageNode::Input{node_, core::RoutingPolicy::kUnicast,
                                            /*distributed=*/false, /*priority=*/0});
    int32_t id = pipeline_->graph_.AddNode(std::move(stage));
    return StreamStage<core::WindowResult<Res>>(pipeline_, id);
  }

 private:
  Pipeline* pipeline_;
  int32_t node_;
  std::function<uint64_t(const T&)> key_fn_;
  core::WindowDef window_;
};

/// A keyed, session-windowed stream awaiting an aggregate operation.
/// Lowers to a single partitioned stateful vertex.
template <typename T>
class SessionWindowedStream {
 public:
  SessionWindowedStream(Pipeline* pipeline, int32_t node,
                        std::function<uint64_t(const T&)> key_fn, Nanos gap)
      : pipeline_(pipeline), node_(node), key_fn_(std::move(key_fn)), gap_(gap) {}

  template <typename Acc, typename Res>
  StreamStage<core::WindowResult<Res>> Aggregate(std::string name,
                                                 core::AggregateOperation<T, Acc, Res> op) {
    auto key_fn = key_fn_;
    auto gap = gap_;
    StageNode rekey;
    rekey.kind = StageNode::Kind::kStateless;
    rekey.name = name + ".key";
    rekey.transform = [key_fn](const core::Item& in, std::vector<core::Item>* out) {
      core::Item copy = in;
      copy.key_hash = HashU64(key_fn(in.payload.As<T>()));
      out->push_back(std::move(copy));
    };
    rekey.inputs.push_back(StageNode::Input{node_, core::RoutingPolicy::kUnicast,
                                            /*distributed=*/false, /*priority=*/0});
    int32_t rekey_id = pipeline_->graph_.AddNode(std::move(rekey));

    StageNode stage;
    stage.kind = StageNode::Kind::kRolling;  // single stateful keyed vertex
    stage.name = std::move(name);
    stage.supplier = [op, key_fn, gap](const core::ProcessorMeta&)
        -> std::unique_ptr<core::Processor> {
      return std::make_unique<core::SessionWindowP<T, Acc, Res>>(op, key_fn, gap);
    };
    stage.inputs.push_back(StageNode::Input{rekey_id, core::RoutingPolicy::kPartitioned,
                                            /*distributed=*/true, /*priority=*/0});
    int32_t id = pipeline_->graph_.AddNode(std::move(stage));
    return StreamStage<core::WindowResult<Res>>(pipeline_, id);
  }

 private:
  Pipeline* pipeline_;
  int32_t node_;
  std::function<uint64_t(const T&)> key_fn_;
  Nanos gap_;
};

// ---------------------------------------------------------------------------
// Implementations needing complete types
// ---------------------------------------------------------------------------

template <typename T>
StreamStage<T> Pipeline::ReadFrom(std::string name,
                                  typename core::GeneratorSourceP<T>::GenFn gen,
                                  typename core::GeneratorSourceP<T>::Options options,
                                  int32_t local_parallelism) {
  StageNode node;
  node.kind = StageNode::Kind::kStreamSource;
  node.name = std::move(name);
  node.local_parallelism = local_parallelism;
  node.supplier = [gen, options](const core::ProcessorMeta&)
      -> std::unique_ptr<core::Processor> {
    return std::make_unique<core::GeneratorSourceP<T>>(gen, options);
  };
  int32_t id = graph_.AddNode(std::move(node));
  return StreamStage<T>(this, id);
}

template <typename T>
StreamStage<T> Pipeline::ReadFromSupplier(std::string name,
                                          core::ProcessorSupplier supplier,
                                          int32_t local_parallelism) {
  StageNode node;
  node.kind = StageNode::Kind::kStreamSource;
  node.name = std::move(name);
  node.local_parallelism = local_parallelism;
  node.supplier = std::move(supplier);
  int32_t id = graph_.AddNode(std::move(node));
  return StreamStage<T>(this, id);
}

template <typename T>
BatchStage<T> Pipeline::ReadFromList(std::string name,
                                     std::vector<std::pair<T, uint64_t>> records,
                                     int32_t local_parallelism) {
  auto shared = std::make_shared<const std::vector<std::pair<T, uint64_t>>>(
      std::move(records));
  StageNode node;
  node.kind = StageNode::Kind::kBatchSource;
  node.name = std::move(name);
  node.local_parallelism = local_parallelism;
  node.supplier = [shared](const core::ProcessorMeta&)
      -> std::unique_ptr<core::Processor> {
    return std::make_unique<core::ListSourceP<T>>(shared);
  };
  int32_t id = graph_.AddNode(std::move(node));
  return BatchStage<T>(this, id);
}

template <typename T>
KeyedStream<T> StreamStage<T>::GroupingKey(std::function<uint64_t(const T&)> key_fn) {
  return KeyedStream<T>(pipeline_, node_, std::move(key_fn));
}

template <typename T>
template <typename B, typename R>
StreamStage<R> StreamStage<T>::HashJoin(
    std::string name, BatchStage<B> build, std::function<uint64_t(const B&)> build_key,
    std::function<uint64_t(const T&)> probe_key,
    std::function<void(const T&, const std::vector<B>&, std::vector<R>*)> join) {
  StageNode stage;
  stage.kind = StageNode::Kind::kHashJoin;
  stage.name = std::move(name);
  stage.supplier = [build_key, probe_key, join](const core::ProcessorMeta&)
      -> std::unique_ptr<core::Processor> {
    return std::make_unique<core::HashJoinP<B, T, R>>(build_key, probe_key, join);
  };
  // Build side: broadcast everywhere, drained before probing (priority 0).
  stage.inputs.push_back(StageNode::Input{build.node(), core::RoutingPolicy::kBroadcast,
                                          /*distributed=*/true, /*priority=*/0});
  // Probe side: any instance may probe (the whole table is everywhere).
  stage.inputs.push_back(StageNode::Input{node_, core::RoutingPolicy::kUnicast,
                                          /*distributed=*/false, /*priority=*/1});
  int32_t id = pipeline_->graph_.AddNode(std::move(stage));
  return StreamStage<R>(pipeline_, id);
}

template <typename T>
template <typename U, typename R>
StreamStage<R> StreamStage<T>::WindowJoin(std::string name, StreamStage<U> right,
                                          std::function<uint64_t(const T&)> left_key,
                                          std::function<uint64_t(const U&)> right_key,
                                          std::function<R(const T&, const U&)> join,
                                          Nanos window_size) {
  // Insert re-keying stages so both partitioned inputs route by the join
  // key's hash, whatever the upstream keying was.
  StreamStage<T> keyed_left = AddStateless<T>(
      name + ".lkey", [left_key](const core::Item& in, std::vector<core::Item>* out) {
        core::Item copy = in;
        copy.key_hash = HashU64(left_key(in.payload.As<T>()));
        out->push_back(std::move(copy));
      });
  StreamStage<U> keyed_right = right.template AddStateless<U>(
      name + ".rkey", [right_key](const core::Item& in, std::vector<core::Item>* out) {
        core::Item copy = in;
        copy.key_hash = HashU64(right_key(in.payload.As<U>()));
        out->push_back(std::move(copy));
      });

  StageNode stage;
  stage.kind = StageNode::Kind::kWindowJoin;
  stage.name = std::move(name);
  stage.supplier = [left_key, right_key, join, window_size](const core::ProcessorMeta&)
      -> std::unique_ptr<core::Processor> {
    return std::make_unique<core::WindowJoinP<T, U, R>>(left_key, right_key, join,
                                                        window_size);
  };
  stage.inputs.push_back(StageNode::Input{keyed_left.node(),
                                          core::RoutingPolicy::kPartitioned,
                                          /*distributed=*/true, /*priority=*/0});
  stage.inputs.push_back(StageNode::Input{keyed_right.node(),
                                          core::RoutingPolicy::kPartitioned,
                                          /*distributed=*/true, /*priority=*/0});
  int32_t id = pipeline_->graph_.AddNode(std::move(stage));
  return StreamStage<R>(pipeline_, id);
}

}  // namespace jet::pipeline

#endif  // JETSIM_PIPELINE_PIPELINE_H_
