// Reproduces §7.7: "Latency: Multi-tenancy" — one hundred concurrent Q5
// jobs on a single node with an aggregate throughput of 1M events/s.
//
// Expected shape: latency grows with the job count because the jobs'
// window-emission bursts collide on the shared cooperative threads, but the
// node keeps working (the tasklet model makes thousands of concurrent
// tasklets cheap, §3.2); the paper reports roughly 200ms at p99.99 with
// 100 jobs.
//
// Deviation note: with the paper's 10ms slide and all 10k keys active per
// job, 100 jobs would emit ~100M results/s — beyond any 12-core machine —
// so this harness uses a 40ms slide to keep emission volume feasible; the
// multi-tenancy *effect* (an order-of-magnitude latency increase purely
// from co-located jobs) is the reproduced result.
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader("Sec 7.7: multi-tenancy — concurrent Q5 jobs, 1 node, 1M ev/s total");

  for (int jobs : {1, 10, 25, 50, 100}) {
    SimConfig c;
    c.profile = ProfileForQuery(5);
    c.nodes = 1;
    c.cores_per_node = 12;
    c.events_per_second = 1e6;  // aggregate across all jobs
    c.concurrent_jobs = jobs;
    c.window_slide = 40 * kNanosPerMilli;
    c.duration = 60 * kNanosPerSecond;
    c.warmup = 15 * kNanosPerSecond;
    SimResult r = RunClusterSim(c);
    char label[48];
    std::snprintf(label, sizeof(label), "%3d concurrent jobs", jobs);
    bench::PrintSimRow(label, r);
  }

  std::printf("\npaper anchor: ~200ms p99.99 at 100 concurrent jobs.\n");
  return 0;
}
