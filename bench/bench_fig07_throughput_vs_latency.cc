// Reproduces Figure 7: "Throughput per CPU-core vs. Latency for Q5 on a
// single node (12 CPU cores) with 10ms window slide."
//
// Methodology (§7.3): Q5 (sliding-window bid counts) on one 12-core node;
// the key-set size scales the output throughput, so total (input+output)
// throughput per core sweeps from under 0.5M to 2M events/s and beyond.
// Expected shape: latency stays low (~low tens of ms at p99.99) up to about
// 1.75M events/s/core, then rises steeply as the cores saturate; the paper
// reports ~13ms at 0.5M and 98ms at 2M.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader(
      "Figure 7: throughput/core vs latency, Q5, 1 node x 12 cores, 10ms slide");
  std::printf("total throughput = input + window-result output; key set scales output\n\n");

  // Total per-core throughput points; input and output split evenly at the
  // top end, as in the paper's key-set scaling.
  const double totals_mps[] = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.1, 2.25};
  for (double total : totals_mps) {
    SimConfig c;
    c.profile = ProfileForQuery(5);
    c.nodes = 1;
    c.cores_per_node = 12;
    c.duration = 60 * kNanosPerSecond;
    c.warmup = 10 * kNanosPerSecond;
    double total_cluster = total * 1e6 * 12;
    c.events_per_second = total_cluster / 2;             // input half
    c.keys = static_cast<int64_t>(total_cluster / 2 / 100);  // output half: keys*100/s
    if (c.keys < 100) c.keys = 100;

    SimResult r = RunClusterSim(c);
    char label[64];
    std::snprintf(label, sizeof(label), "%.2fM ev/s/core (keys=%lld)", total,
                  static_cast<long long>(c.keys));
    bench::PrintSimRow(label, r);
  }

  std::printf(
      "\npaper anchors: ~13ms p99.99 near 0.5M/core; sharp rise past 1.75M/core;\n"
      "98ms at 2M/core (JVM-at-saturation tails are modeled conservatively here —\n"
      "the knee location is the reproduced result).\n");
  return 0;
}
