// Reproduces Figure 13: "Latency in Query 5, with checkpoints enabled."
//
// Methodology (§7.6): Q5 at 1M events/s with exactly-once snapshots every
// second, replicated to one backup member (§7.1). Expected shape: latency
// stays very low for ~70% of results, spikes to ~200ms around p90, and
// stabilizes near 350ms at p99.99 — the cost of barrier alignment plus
// serializing the windowed state into the IMDG each second.
//
// Also prints the no-checkpoint baseline for contrast, and a sweep of the
// snapshot interval (the paper's discussion in §4.6 motivates why Jet's
// users often prefer active-active replication over frequent snapshots).
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader("Figure 13: Q5 latency with 1s exactly-once checkpoints");

  SimConfig base;
  base.profile = ProfileForQuery(5);
  base.nodes = 1;
  base.cores_per_node = 12;
  base.events_per_second = 1e6;
  base.duration = 120 * kNanosPerSecond;
  base.warmup = 20 * kNanosPerSecond;

  {
    SimConfig off = base;
    SimResult r = RunClusterSim(off);
    bench::PrintPercentileCurve("checkpoints disabled (baseline)", r.latency);
  }
  {
    SimConfig on = base;
    on.exactly_once = true;
    on.snapshot_interval = kNanosPerSecond;
    SimResult r = RunClusterSim(on);
    bench::PrintPercentileCurve("checkpoints every 1s (exactly-once)", r.latency);
  }
  {
    // §7.6: "We do have plans on optimizing the datapath with
    // fault-tolerance enabled in the future, especially focusing on
    // at-least once processing guarantees" — the unaligned variant.
    SimConfig alo = base;
    alo.at_least_once = true;
    alo.snapshot_interval = kNanosPerSecond;
    SimResult r = RunClusterSim(alo);
    bench::PrintPercentileCurve("checkpoints every 1s (at-least-once, unaligned)",
                                r.latency);
  }

  bench::PrintHeader("snapshot interval sweep (extension)");
  for (Nanos interval : {500 * kNanosPerMilli, kNanosPerSecond, 2 * kNanosPerSecond,
                         5 * kNanosPerSecond}) {
    SimConfig c = base;
    c.exactly_once = true;
    c.snapshot_interval = interval;
    SimResult r = RunClusterSim(c);
    char label[64];
    std::snprintf(label, sizeof(label), "snapshot every %4lld ms",
                  static_cast<long long>(interval / kNanosPerMilli));
    bench::PrintSimRow(label, r);
  }

  std::printf(
      "\npaper anchors: ~350ms p99.99 with 1s checkpoints; low until ~p70, ~200ms\n"
      "at p90 — matching the fraction of each second spent aligned+serializing.\n");
  return 0;
}
