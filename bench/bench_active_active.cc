// §4.6 "Fault Tolerance via Active Replication": instead of paying for
// low-latency snapshots, Jet's users often run the job twice — one active
// and one active stand-by — because the engine's per-core efficiency makes
// the second copy affordable; failover then has near-zero recovery gap.
//
// This harness measures the *output availability gap* around a failure for
// both strategies on the real engine:
//   A) exactly-once snapshots + restore on the surviving members (§4.4)
//   B) active-active: two independent clusters compute the same job; the
//      consumer deduplicates by (key, window) and fails over instantly.
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "cluster/jet_cluster.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"

namespace {

using namespace jet;  // NOLINT

struct Event {
  uint64_t key = 0;
};

// Records the wall-clock arrival time of the first result per window end
// across however many job copies feed it (the §4.6 consumer-side dedup).
class ArrivalLog {
 public:
  void Record(Nanos window_end, Nanos arrival) {
    std::scoped_lock lock(mutex_);
    auto [it, inserted] = first_arrival_.try_emplace(window_end, arrival);
    if (!inserted && arrival < it->second) it->second = arrival;
  }

  // Largest wall-clock gap between arrivals of consecutive windows.
  Nanos MaxGap() const {
    std::scoped_lock lock(mutex_);
    Nanos max_gap = 0;
    const Nanos* prev = nullptr;
    for (const auto& [window_end, arrival] : first_arrival_) {
      if (prev != nullptr && arrival > *prev) max_gap = std::max(max_gap, arrival - *prev);
      prev = &arrival;
    }
    return max_gap;
  }

  size_t WindowCount() const {
    std::scoped_lock lock(mutex_);
    return first_arrival_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<Nanos, Nanos> first_arrival_;
};

class ArrivalSinkP final : public core::Processor {
 public:
  explicit ArrivalSinkP(std::shared_ptr<ArrivalLog> log) : log_(std::move(log)) {}

  void Process(int ordinal, core::Inbox* inbox) override {
    (void)ordinal;
    const Nanos now = WallClock::Global().Now();
    while (!inbox->Empty()) {
      const auto& r = inbox->Peek()->payload.As<core::WindowResult<int64_t>>();
      log_->Record(r.window_end, now);
      inbox->RemoveFront();
    }
  }

 private:
  std::shared_ptr<ArrivalLog> log_;
};

constexpr double kRate = 50'000;
constexpr Nanos kDuration = 3 * kNanosPerSecond;
constexpr Nanos kWindow = 50 * kNanosPerMilli;

// Builds the windowed counting job wired to `log`. Each call creates an
// independent Dag (suppliers capture the shared log only).
std::unique_ptr<core::Dag> MakeDag(std::shared_ptr<ArrivalLog> log) {
  auto dag = std::make_unique<core::Dag>();
  auto op = core::CountingAggregate<Event>();
  core::WindowDef window = core::WindowDef::Tumbling(kWindow);

  auto source = dag->AddVertex(
      "source",
      [](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = kRate;
        opt.duration = kDuration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<core::GeneratorSourceP<Event>>(
            [](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % 32)};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  auto accumulate = dag->AddVertex(
      "accumulate",
      [op, window](const core::ProcessorMeta&) {
        return std::make_unique<core::AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      1);
  auto combine = dag->AddVertex(
      "combine",
      [op, window](const core::ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<Event, int64_t, int64_t>>(op,
                                                                               window);
      },
      1);
  auto sink = dag->AddVertex(
      "sink",
      [log](const core::ProcessorMeta&) { return std::make_unique<ArrivalSinkP>(log); },
      1);
  dag->AddEdge(source, accumulate);
  auto& e = dag->AddEdge(accumulate, combine);
  e.routing = core::RoutingPolicy::kPartitioned;
  e.distributed = true;
  dag->AddEdge(combine, sink);
  return dag;
}

// Scenario A: one cluster, exactly-once snapshots, node failure -> restore.
void RunSnapshotRecovery() {
  auto log = std::make_shared<ArrivalLog>();
  auto dag = MakeDag(log);
  cluster::ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  config.failure_detection_delay = 500 * kNanosPerMilli;  // heartbeat timeout
  cluster::JetCluster jet_cluster(config);

  core::JobConfig jc;
  jc.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  jc.snapshot_interval = 100 * kNanosPerMilli;
  auto job = jet_cluster.SubmitJob(dag.get(), jc, 1);
  if (!job.ok()) {
    std::printf("A: submit failed: %s\n", job.status().ToString().c_str());
    return;
  }
  for (int i = 0; i < 5000 && (*job)->last_committed_snapshot() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (void)jet_cluster.KillNode(1);
  (void)(*job)->Join();
  std::printf(
      "A) snapshot recovery (§4.4):  output gap = %7.1f ms   windows=%zu "
      "(detect + promote + restore + replay)\n",
      static_cast<double>(log->MaxGap()) / 1e6, log->WindowCount());
}

// Scenario B: two independent clusters compute the same job; the shared
// ArrivalLog is the §4.6 consumer taking whichever copy answers first.
// No guarantee configured on either copy ("in the absence of book-keeping
// and overhead for fault tolerance such a deployment ... performs
// extremely efficiently"). The active copy is killed mid-run.
void RunActiveActive() {
  auto log = std::make_shared<ArrivalLog>();
  auto dag_active = MakeDag(log);
  auto dag_standby = MakeDag(log);

  cluster::ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  cluster::JetCluster active(config);
  cluster::JetCluster standby(config);

  auto job_active = active.SubmitJob(dag_active.get(), core::JobConfig{}, 1);
  auto job_standby = standby.SubmitJob(dag_standby.get(), core::JobConfig{}, 1);
  if (!job_active.ok() || !job_standby.ok()) {
    std::printf("B: submit failed\n");
    return;
  }
  // Fail the entire active site mid-run.
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  (*job_active)->Cancel();
  (void)(*job_standby)->Join();
  std::printf(
      "B) active-active (§4.6):      output gap = %7.1f ms   windows=%zu "
      "(the stand-by was already computing)\n",
      static_cast<double>(log->MaxGap()) / 1e6, log->WindowCount());
}

}  // namespace

int main() {
  std::printf("=== §4.6 trade-off: snapshot recovery vs active-active failover ===\n");
  std::printf("Q5-like windowed count, 3-node clusters, failure at ~1s, 50ms windows, 500ms failure detector\n\n");
  RunSnapshotRecovery();
  RunActiveActive();
  std::printf(
      "\nexpected shape: the active-active gap stays near the window cadence\n"
      "(~50-100 ms) while snapshot recovery pays detection + backup promotion +\n"
      "state restore + source replay — the §4.6 rationale for running the job\n"
      "twice on an efficient engine instead of optimizing snapshots.\n");
  return 0;
}
