// Reproduces Figure 10: "Throughput as we increase the cluster size from
// one VM (12 cores) to 20 VMs (240 cores), for Q5 with a sliding window of
// 500ms."
//
// Methodology (§7.4): find the maximum ingest rate each cluster size
// sustains (no saturation) and report it alongside tail latency. Expected
// shape: near-linear scaling up to ~468M events/s at 240 cores — possible
// because the two-stage combiners cap the exchanged data at the key-set
// size — while p99.99 latency never exceeds ~17ms.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

namespace {

using jet::sim::RunClusterSim;
using jet::sim::SimConfig;
using jet::sim::SimResult;

// Binary-search the highest sustainable ingest rate for the cluster size.
double FindMaxSustainable(SimConfig base, double lo, double hi) {
  for (int iter = 0; iter < 12; ++iter) {
    double mid = (lo + hi) / 2;
    SimConfig c = base;
    c.events_per_second = mid;
    SimResult r = RunClusterSim(c);
    // Sustainable: not saturated and p99.99 under 25ms.
    if (!r.saturated && r.latency.ValueAtQuantile(0.9999) < 25 * jet::kNanosPerMilli) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader("Figure 10: max ingest vs cluster size, Q5, 500ms slide");

  double one_node_rate = 0;
  for (int nodes : {1, 2, 5, 10, 15, 20}) {
    SimConfig base;
    base.profile = ProfileForQuery(5);
    base.nodes = nodes;
    base.cores_per_node = 12;
    base.window_slide = 500 * kNanosPerMilli;
    base.duration = 40 * kNanosPerSecond;
    base.warmup = 12 * kNanosPerSecond;

    double max_rate =
        FindMaxSustainable(base, 1e6, 3.0e6 * 12 * nodes);
    if (nodes == 1) one_node_rate = max_rate;

    SimConfig at_max = base;
    at_max.events_per_second = max_rate;
    SimResult r = RunClusterSim(at_max);

    std::printf(
        "%2d nodes (%3d cores): max sustained = %7.1fM ev/s  (%.2fM/core, "
        "speedup %.1fx)  p99.99=%6.2f ms\n",
        nodes, nodes * 12, max_rate / 1e6, max_rate / 1e6 / (nodes * 12),
        one_node_rate > 0 ? max_rate / one_node_rate : 1.0,
        static_cast<double>(r.latency.ValueAtQuantile(0.9999)) / 1e6);
  }

  std::printf(
      "\npaper anchors: 468M ev/s at 20 nodes (240 cores), near-linear scaling,\n"
      "p99.99 <= 17ms throughout (the 500ms slide keeps output traffic constant\n"
      "once the pre-aggregates cover the 10k keys).\n");
  return 0;
}
