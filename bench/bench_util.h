#ifndef JETSIM_BENCH_BENCH_UTIL_H_
#define JETSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/metrics.h"
#include "sim/cluster_sim.h"

namespace jet::bench {

// ---------------------------------------------------------------------------
// Machine-readable baselines (BENCH_*.json)
// ---------------------------------------------------------------------------

/// One scenario row of a committed machine-readable baseline. The schema is
/// shared by every committed BENCH_*.json (bench_engine_micro,
/// bench_shufflebench): scenario × mode with throughput and per-item latency
/// percentiles, so the baselines cannot drift in format and one CI parser
/// guards them all.
struct BenchScenario {
  std::string scenario;
  std::string mode;
  int64_t items = 0;
  double elapsed_sec = 0;
  double throughput = 0;  ///< items / sec
  int64_t min_ns = 0;     ///< exact minimum (Histogram q=0 endpoint)
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  int64_t p9999_ns = 0;
  int64_t max_ns = 0;     ///< exact maximum (Histogram q=1 endpoint)
};

/// Builds a scenario row from a per-item latency histogram. Percentiles come
/// from Histogram::ValueAtQuantile exclusively — in particular the min/max
/// fields use the exact q=0 / q=1 endpoint semantics of the Histogram
/// rewrite (q<=0 returns the exact recorded minimum, q>=1 the exact maximum,
/// not a bucket edge) — so no bench recomputes percentiles ad hoc.
inline BenchScenario MakeScenario(std::string scenario, std::string mode,
                                  int64_t items, Nanos elapsed,
                                  const Histogram& latency) {
  BenchScenario s;
  s.scenario = std::move(scenario);
  s.mode = std::move(mode);
  s.items = items;
  s.elapsed_sec = static_cast<double>(elapsed) / 1e9;
  s.throughput = s.elapsed_sec > 0 ? static_cast<double>(items) / s.elapsed_sec : 0;
  s.min_ns = latency.ValueAtQuantile(0.0);
  s.p50_ns = latency.ValueAtQuantile(0.50);
  s.p99_ns = latency.ValueAtQuantile(0.99);
  s.p9999_ns = latency.ValueAtQuantile(0.9999);
  s.max_ns = latency.ValueAtQuantile(1.0);
  return s;
}

/// Writes the shared baseline JSON document:
///   {"bench": <name>, "scenarios": [{"scenario", "mode", "items",
///    "elapsed_sec", "throughput_items_per_sec",
///    "latency_ns": {"min", "p50", "p99", "p9999", "max"}}, ...]}
/// Returns false (with a message on stderr) when the file cannot be opened.
inline bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                           const std::vector<BenchScenario>& scenarios) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scenarios\": [\n", bench_name.c_str());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const BenchScenario& s = scenarios[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"mode\": \"%s\", \"items\": %lld, "
                 "\"elapsed_sec\": %.6f, \"throughput_items_per_sec\": %.0f, "
                 "\"latency_ns\": {\"min\": %lld, \"p50\": %lld, \"p99\": %lld, "
                 "\"p9999\": %lld, \"max\": %lld}}%s\n",
                 s.scenario.c_str(), s.mode.c_str(), static_cast<long long>(s.items),
                 s.elapsed_sec, s.throughput, static_cast<long long>(s.min_ns),
                 static_cast<long long>(s.p50_ns), static_cast<long long>(s.p99_ns),
                 static_cast<long long>(s.p9999_ns), static_cast<long long>(s.max_ns),
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

/// Prints one scenario as a human-readable console row (the companion of
/// WriteBenchJson for interactive runs).
inline void PrintScenarioRow(const BenchScenario& s) {
  std::printf(
      "%-24s %-12s %12.0f items/s  p50 %7lld ns  p99 %7lld ns  p99.99 %8lld ns\n",
      s.scenario.c_str(), s.mode.c_str(), s.throughput,
      static_cast<long long>(s.p50_ns), static_cast<long long>(s.p99_ns),
      static_cast<long long>(s.p9999_ns));
}

/// Prints the standard percentile row of one measurement (values in ms).
inline void PrintLatencyRow(const std::string& label, const Histogram& h,
                            const std::string& extra = "") {
  std::printf("%-34s p50=%8.2f  p90=%8.2f  p99=%8.2f  p99.9=%8.2f  p99.99=%8.2f ms%s%s\n",
              label.c_str(), static_cast<double>(h.ValueAtQuantile(0.50)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.90)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.99)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.999)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.9999)) / 1e6,
              extra.empty() ? "" : "  ", extra.c_str());
}

/// Prints a full percentile-distribution curve (the format of the paper's
/// Figures 9/11/12/13).
inline void PrintPercentileCurve(const std::string& label, const Histogram& h) {
  std::printf("%s (n=%lld)\n", label.c_str(), static_cast<long long>(h.count()));
  for (const auto& [q, v] : h.PercentileCurve()) {
    std::printf("  %9.5f%%  %10.3f ms\n", q * 100.0, static_cast<double>(v) / 1e6);
  }
}

/// Prints a sim result row with utilization/saturation info.
inline void PrintSimRow(const std::string& label, const sim::SimResult& r) {
  char extra[96];
  std::snprintf(extra, sizeof(extra), "util=%.2f%s", r.peak_utilization,
                r.saturated ? " SATURATED" : "");
  PrintLatencyRow(label, r.latency, extra);
}

/// Section header.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the per-vertex observability breakdown of a finished job (the
/// jet::obs event-loop-profiler view): how busy each tasklet's calls were
/// and where the call-time tail sits relative to the §3.2 cooperative
/// budget. A vertex whose p99.99 call time is far above the budget is the
/// one that bends the job's end-to-end tail latency.
inline void PrintVertexBreakdown(const core::JobMetrics& m) {
  std::printf("  %-28s %12s %7s %12s %12s %12s %11s\n", "tasklet", "items", "busy%",
              "call p50", "call p99.99", "call max", "overbudget");
  for (const auto& t : m.tasklets) {
    std::printf("  %-28s %12lld %6.1f%% %9.1f us %9.1f us %9.1f us %11lld\n",
                t.name.c_str(), static_cast<long long>(t.items_processed),
                100.0 * t.BusyFraction(), static_cast<double>(t.p50_call_nanos) / 1e3,
                static_cast<double>(t.p9999_call_nanos) / 1e3,
                static_cast<double>(t.max_call_nanos) / 1e3,
                static_cast<long long>(t.overbudget_calls));
  }
}

}  // namespace jet::bench

#endif  // JETSIM_BENCH_BENCH_UTIL_H_
