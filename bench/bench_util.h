#ifndef JETSIM_BENCH_BENCH_UTIL_H_
#define JETSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/histogram.h"
#include "core/metrics.h"
#include "sim/cluster_sim.h"

namespace jet::bench {

/// Prints the standard percentile row of one measurement (values in ms).
inline void PrintLatencyRow(const std::string& label, const Histogram& h,
                            const std::string& extra = "") {
  std::printf("%-34s p50=%8.2f  p90=%8.2f  p99=%8.2f  p99.9=%8.2f  p99.99=%8.2f ms%s%s\n",
              label.c_str(), static_cast<double>(h.ValueAtQuantile(0.50)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.90)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.99)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.999)) / 1e6,
              static_cast<double>(h.ValueAtQuantile(0.9999)) / 1e6,
              extra.empty() ? "" : "  ", extra.c_str());
}

/// Prints a full percentile-distribution curve (the format of the paper's
/// Figures 9/11/12/13).
inline void PrintPercentileCurve(const std::string& label, const Histogram& h) {
  std::printf("%s (n=%lld)\n", label.c_str(), static_cast<long long>(h.count()));
  for (const auto& [q, v] : h.PercentileCurve()) {
    std::printf("  %9.5f%%  %10.3f ms\n", q * 100.0, static_cast<double>(v) / 1e6);
  }
}

/// Prints a sim result row with utilization/saturation info.
inline void PrintSimRow(const std::string& label, const sim::SimResult& r) {
  char extra[96];
  std::snprintf(extra, sizeof(extra), "util=%.2f%s", r.peak_utilization,
                r.saturated ? " SATURATED" : "");
  PrintLatencyRow(label, r.latency, extra);
}

/// Section header.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the per-vertex observability breakdown of a finished job (the
/// jet::obs event-loop-profiler view): how busy each tasklet's calls were
/// and where the call-time tail sits relative to the §3.2 cooperative
/// budget. A vertex whose p99.99 call time is far above the budget is the
/// one that bends the job's end-to-end tail latency.
inline void PrintVertexBreakdown(const core::JobMetrics& m) {
  std::printf("  %-28s %12s %7s %12s %12s %12s %11s\n", "tasklet", "items", "busy%",
              "call p50", "call p99.99", "call max", "overbudget");
  for (const auto& t : m.tasklets) {
    std::printf("  %-28s %12lld %6.1f%% %9.1f us %9.1f us %9.1f us %11lld\n",
                t.name.c_str(), static_cast<long long>(t.items_processed),
                100.0 * t.BusyFraction(), static_cast<double>(t.p50_call_nanos) / 1e3,
                static_cast<double>(t.p9999_call_nanos) / 1e3,
                static_cast<double>(t.max_call_nanos) / 1e3,
                static_cast<long long>(t.overbudget_calls));
  }
}

}  // namespace jet::bench

#endif  // JETSIM_BENCH_BENCH_UTIL_H_
