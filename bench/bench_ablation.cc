// Ablation benchmarks for the design decisions DESIGN.md calls out:
//
//  1. Operator fusion (§3.1): chained stateless stages as one processor vs
//     one vertex per stage with queues between them (real engine).
//  2. Deduct-based sliding windows vs recombining every frame (§2.3 cites
//     worst-case-constant-time sliding aggregation; real engine).
//  3. Isolated (core-local) edges vs unicast load-balancing (§3.1 data
//     locality; real engine).
//  4. Window-emission burst alignment across tenant jobs (§7.7; simulator).
//  5. GC pause target tuning (§5/§7.1 "GC pause target of at most 5ms";
//     simulator).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/job.h"
#include "pipeline/pipeline.h"
#include "sim/cluster_sim.h"

namespace {

using namespace jet;  // NOLINT

core::GeneratorSourceP<int64_t>::Options UnthrottledInts(int64_t count) {
  core::GeneratorSourceP<int64_t>::Options opt;
  opt.events_per_second = 1e9;
  opt.duration = count;
  opt.watermark_interval = 1000;
  opt.start_time = 0;
  return opt;
}

double RunPipelineTimed(pipeline::Pipeline* p, const pipeline::PlanOptions& options,
                        int64_t events) {
  auto dag = p->ToDag(options);
  if (!dag.ok()) return -1;
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  if (!job.ok()) return -1;
  WallClock clock;
  Nanos start = clock.Now();
  (void)(*job)->Start();
  (void)(*job)->Join();
  Nanos elapsed = clock.Now() - start;
  return static_cast<double>(events) / (static_cast<double>(elapsed) / 1e9);
}

void AblateFusion() {
  bench::PrintHeader("ablation 1: operator fusion (4 chained maps, real engine)");
  constexpr int64_t kEvents = 1'000'000;
  for (bool fusion : {true, false}) {
    pipeline::Pipeline p;
    auto stage = p.ReadFrom<int64_t>(
        "ints", [](int64_t seq) { return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq))); },
        UnthrottledInts(kEvents));
    auto out = stage.Map<int64_t>("m1", [](const int64_t& v) { return v + 1; })
                   .Map<int64_t>("m2", [](const int64_t& v) { return v * 3; })
                   .Map<int64_t>("m3", [](const int64_t& v) { return v - 2; })
                   .Map<int64_t>("m4", [](const int64_t& v) { return v ^ 0x5A; });
    out.WriteToCountSink("count");
    pipeline::PlanOptions options;
    options.enable_fusion = fusion;
    double rate = RunPipelineTimed(&p, options, kEvents);
    std::printf("  fusion %-3s : %7.2fM events/s\n", fusion ? "ON" : "OFF", rate / 1e6);
  }
}

void AblateDeduct() {
  bench::PrintHeader(
      "ablation 2: deduct-based sliding window vs recombine (100 frames/window)");
  // Unthrottled: 1 event per ns of event time; windows defined in event
  // time so each window spans 100 frames of 50k events each.
  constexpr int64_t kEvents = 2'000'000;
  constexpr Nanos kSlide = 50'000;  // event-time ns => 50k events per frame
  for (bool deduct : {true, false}) {
    pipeline::Pipeline p;
    auto op = core::CountingAggregate<int64_t>();
    if (!deduct) op.deduct = nullptr;
    p.ReadFrom<int64_t>(
         "ints",
         [](int64_t seq) {
           auto key = static_cast<uint64_t>(seq % 1000);
           return std::make_pair(seq, HashU64(key));
         },
         UnthrottledInts(kEvents))
        .GroupingKey([](const int64_t& v) { return static_cast<uint64_t>(v % 1000); })
        .Window(core::WindowDef::Sliding(100 * kSlide, kSlide))
        .Aggregate<int64_t, int64_t>("count", op)
        .WriteToCountSink("count");
    double rate = RunPipelineTimed(&p, {}, kEvents);
    std::printf("  deduct %-3s : %7.2fM events/s\n", deduct ? "ON" : "OFF", rate / 1e6);
  }
}

void AblateIsolatedEdges() {
  bench::PrintHeader("ablation 3: isolated (core-local) vs unicast local edges");
  constexpr int64_t kEvents = 1'000'000;
  for (bool isolate : {true, false}) {
    pipeline::Pipeline p;
    p.ReadFrom<int64_t>(
         "ints",
         [](int64_t seq) { return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq))); },
         UnthrottledInts(kEvents), /*local_parallelism=*/2)
        .Map<int64_t>("map", [](const int64_t& v) { return v + 1; })
        .WriteToCountSink("count", /*local_parallelism=*/2);
    pipeline::PlanOptions options;
    options.isolate_local_edges = isolate;
    double rate = RunPipelineTimed(&p, options, kEvents);
    std::printf("  isolated %-3s : %7.2fM events/s\n", isolate ? "ON" : "OFF",
                rate / 1e6);
  }
}

void AblateBurstAlignment() {
  bench::PrintHeader("ablation 4: tenant window-phase alignment (50 jobs, simulator)");
  for (bool stagger : {false, true}) {
    sim::SimConfig c;
    c.profile = sim::ProfileForQuery(5);
    c.events_per_second = 1e6;
    c.concurrent_jobs = 50;
    c.window_slide = 40 * kNanosPerMilli;
    c.duration = 60 * kNanosPerSecond;
    c.warmup = 15 * kNanosPerSecond;
    c.stagger_job_phases = stagger;
    auto r = sim::RunClusterSim(c);
    bench::PrintSimRow(stagger ? "staggered phases" : "aligned phases (default)", r);
  }
}

void AblateGcTarget() {
  bench::PrintHeader("ablation 5: GC pause target (Q5, 1 node, 1M ev/s, simulator)");
  for (double target_ms : {2.5, 5.0, 10.0, 20.0}) {
    sim::SimConfig c;
    c.profile = sim::ProfileForQuery(5);
    c.events_per_second = 1e6;
    c.duration = 60 * kNanosPerSecond;
    c.warmup = 10 * kNanosPerSecond;
    // Larger target => longer but rarer young pauses.
    c.gc.young_pause_mean_ms = target_ms;
    c.gc.young_pause_sd_ms = target_ms * 0.35;
    c.gc.young_gen_bytes = 2.0e9 * target_ms / 5.0;
    auto r = sim::RunClusterSim(c);
    char label[48];
    std::snprintf(label, sizeof(label), "pause target ~%.1f ms", target_ms);
    bench::PrintSimRow(label, r);
  }
}

}  // namespace

int main() {
  AblateFusion();
  AblateDeduct();
  AblateIsolatedEdges();
  AblateBurstAlignment();
  AblateGcTarget();
  return 0;
}
