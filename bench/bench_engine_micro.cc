// Microbenchmarks of the real engine's building blocks (google-benchmark).
//
// These back the paper's systems claims at component level: wait-free SPSC
// queues (§3.2), cheap partition routing (§4.1), O(1) latency recording,
// and the per-event cost of the windowed accumulate stage that bounds the
// "2M events per second per CPU-core" capacity (§4.6).
// Run with --json[=path] to skip google-benchmark and emit the
// machine-readable exchange-path scenarios (BENCH_engine_micro.json):
// throughput and p50/p99/p99.99 per-item latency for the shuffle-heavy
// and unicast exchange hops, in both the legacy per-item shape and the
// batched shape. CI parses the file and the committed baseline guards the
// batching speedup.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/spsc_queue.h"
#include "core/aggregate.h"
#include "core/inbox_outbox.h"
#include "core/item.h"
#include "core/processors_window.h"
#include "imdg/grid.h"
#include "imdg/partition_table.h"
#include "net/exchange.h"

namespace {

using namespace jet;        // NOLINT
using namespace jet::core;  // NOLINT

void BM_SpscQueuePushPop(benchmark::State& state) {
  SpscQueue<int64_t> queue(1024);
  int64_t v = 0;
  for (auto _ : state) {
    queue.TryPush(v);
    int64_t out;
    queue.TryPop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_SpscQueueBatch64(benchmark::State& state) {
  SpscQueue<int64_t> queue(1024);
  std::vector<int64_t> batch(64);
  for (auto _ : state) {
    queue.PushBatch(batch.begin(), batch.end());
    size_t drained = queue.DrainTo([](int64_t&&) {}, 64);
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscQueueBatch64);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) % 100'000'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HashU64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = HashU64(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashU64);

void BM_ItemBoxing(benchmark::State& state) {
  for (auto _ : state) {
    Item item = Item::Data<int64_t>(42, 1000, 7);
    benchmark::DoNotOptimize(item);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ItemBoxing);

void BM_PartitionForHash(benchmark::State& state) {
  uint64_t x = 99;
  for (auto _ : state) {
    auto p = imdg::PartitionForHash(x, imdg::kDefaultPartitionCount);
    benchmark::DoNotOptimize(p);
    ++x;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionForHash);

void BM_GridPut(benchmark::State& state) {
  imdg::DataGrid grid(/*backup_count=*/1);
  (void)grid.AddMember(0);
  (void)grid.AddMember(1);
  Bytes key(8), value(64);
  uint64_t k = 0;
  for (auto _ : state) {
    std::memcpy(key.data(), &k, 8);
    benchmark::DoNotOptimize(grid.Put("bench", key, value));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridPut);

void BM_GridGet(benchmark::State& state) {
  imdg::DataGrid grid(/*backup_count=*/1);
  (void)grid.AddMember(0);
  (void)grid.AddMember(1);
  Bytes value(64);
  for (uint64_t k = 0; k < 10'000; ++k) {
    Bytes key(8);
    std::memcpy(key.data(), &k, 8);
    (void)grid.Put("bench", key, value);
  }
  uint64_t k = 0;
  Bytes key(8);
  for (auto _ : state) {
    uint64_t lookup = k % 10'000;
    std::memcpy(key.data(), &lookup, 8);
    benchmark::DoNotOptimize(grid.Get("bench", key));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridGet);

// Per-event cost of the keyed windowed accumulation (stage 1) — the
// dominant per-event work of Q5.
void BM_WindowAccumulate(benchmark::State& state) {
  const int64_t keys = state.range(0);
  auto op = CountingAggregate<int64_t>();
  AccumulateByFrameP<int64_t, int64_t, int64_t> processor(
      op, [](const int64_t& v) { return static_cast<uint64_t>(v); },
      WindowDef::Sliding(100 * kNanosPerMilli, 10 * kNanosPerMilli));
  Outbox outbox(1, 4096);
  ProcessorContext ctx;
  ctx.outbox = &outbox;
  static ManualClock clock(0);
  ctx.clock = &clock;
  (void)processor.Init(&ctx);

  Inbox inbox;
  int64_t ts = 0;
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    inbox.Clear();
    for (int i = 0; i < 256; ++i) {
      auto key = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(keys)));
      inbox.Add(Item::Data<int64_t>(key, ts, HashU64(static_cast<uint64_t>(key))));
      ts += 1000;
    }
    state.ResumeTiming();
    processor.Process(0, &inbox);
    // Periodically flush closed frames so state stays bounded.
    if ((ts / 1000) % (1 << 16) == 0) {
      (void)processor.TryProcessWatermark(ts - 20 * kNanosPerMilli);
      outbox.bucket(0).clear();
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WindowAccumulate)->Arg(100)->Arg(10'000)->Arg(1'000'000);

// ---------------------------------------------------------------------------
// JSON mode: the exchange-path scenarios behind BENCH_engine_micro.json.
// ---------------------------------------------------------------------------

// One exchange hop as the engine runs it: producer SPSC queue -> tasklet
// inbox -> wire frame -> receiver staging -> outbox fan-out. `batched`
// uses the bulk paths of the batched exchange (SpscQueue::DrainWhile,
// Inbox::DrainTo, whole-frame WireBuffer steal, move-based OfferToAll);
// `per_item` replays the legacy shape (per-item pops, deque staging,
// copy-based broadcast). The latency histogram records per-item
// nanoseconds, chunk by chunk, so the tail percentiles reflect jitter and
// not just the mean.
jet::bench::BenchScenario RunExchangeHop(const std::string& scenario, bool batched,
                                         int32_t fan_out, int64_t chunks) {
  constexpr int kChunk = 256;
  SpscQueue<Item> queue(1024);
  Inbox inbox;
  Outbox outbox(fan_out, /*bucket_capacity=*/kChunk * 2);
  net::WireBuffer wire;
  Histogram latency;
  const Clock& clock = WallClock::Global();
  int64_t ts = 0;
  int64_t measured_items = 0;
  Nanos measured_nanos = 0;

  for (int64_t c = -16; c < chunks; ++c) {  // negative chunks warm up
    const Nanos t0 = clock.Now();
    for (int i = 0; i < kChunk; ++i) {
      Item item = Item::Data<int64_t>(ts, ts, HashU64(static_cast<uint64_t>(ts)));
      (void)queue.TryPush(item);
      ++ts;
    }
    if (batched) {
      (void)queue.DrainWhile([](const Item&) { return true; },
                             [&inbox](Item&& it) { inbox.Add(std::move(it)); }, kChunk);
      std::vector<Item> frame;
      frame.reserve(kChunk);
      (void)inbox.DrainTo(&frame, kChunk);
      wire.Push(std::move(frame));
      std::vector<Item> staged;
      (void)wire.DrainInto(&staged, kChunk);
      for (Item& item : staged) (void)outbox.OfferToAll(std::move(item));
    } else {
      Item popped;
      while (queue.TryPop(popped)) inbox.Add(std::move(popped));
      while (!inbox.Empty()) {
        std::vector<Item> frame;
        frame.push_back(inbox.Poll());
        wire.Push(std::move(frame));
      }
      std::deque<Item> staged;
      while (wire.Drain(&staged, 1) > 0) {
        (void)outbox.OfferToAll(staged.front());
        staged.pop_front();
      }
    }
    for (int32_t b = 0; b < fan_out; ++b) outbox.bucket(b).clear();
    const Nanos t1 = clock.Now();
    if (c >= 0) {
      latency.Record(std::max<Nanos>(1, (t1 - t0) / kChunk));
      measured_items += kChunk;
      measured_nanos += t1 - t0;
    }
  }

  return jet::bench::MakeScenario(scenario, batched ? "batched" : "per_item",
                                  measured_items, measured_nanos, latency);
}

// Contended keyed aggregation against the IMDG (PR 10): four "processor"
// threads each maintain counters for a disjoint set of partitions, the
// exact shape the single-writer ownership model targets. `locked` runs the
// legacy access path — every read-modify-write is a Get plus a Put, each
// taking the layout rwlock shared plus the partition mutex, so the four
// threads contend on the rwlock reader count and the mutex cache lines
// even though their key sets are disjoint. `owned` claims the partitions
// and goes through OwnedPartitionHandle::Update: zero lock operations per
// event. Per-event latency is recorded chunk by chunk per thread and the
// histograms merged, so the p99.99 captures the cross-thread jitter the
// locks introduce.
jet::bench::BenchScenario RunContendedKeyedAggregation(bool owned, int64_t chunks) {
  constexpr int kThreads = 4;
  constexpr int kChunk = 256;
  constexpr int kKeysPerThread = 64;
  imdg::DataGrid grid(/*backup_count=*/0, /*partition_count=*/64);
  (void)grid.AddMember(0);

  // Deal keys out by home partition so each thread's working set lives in
  // partitions no other thread touches (keyed aggregation: one writer per
  // key group).
  std::vector<std::vector<std::pair<Bytes, imdg::PartitionId>>> keys(kThreads);
  uint64_t probe = 1;
  while (true) {
    Bytes key(8);
    std::memcpy(key.data(), &probe, 8);
    const imdg::PartitionId p = grid.PartitionOf(key);
    auto& mine = keys[p % kThreads];
    if (mine.size() < kKeysPerThread) mine.emplace_back(std::move(key), p);
    bool done = true;
    for (const auto& k : keys) done = done && k.size() == kKeysPerThread;
    if (done) break;
    ++probe;
  }

  std::vector<Histogram> latency(kThreads);
  std::vector<Nanos> elapsed(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      const Clock& clock = WallClock::Global();
      std::vector<std::unique_ptr<imdg::OwnedPartitionHandle>> handles;
      // partition -> handle index, valid only in owned mode.
      std::vector<int> handle_of(64, -1);
      if (owned) {
        for (const auto& [key, p] : keys[t]) {
          if (handle_of[p] >= 0) continue;
          (void)grid.ownership().Claim(p, t, /*tasklet=*/t);
          auto h = grid.AcquireOwnedPartition("agg", p, t);
          handle_of[p] = static_cast<int>(handles.size());
          handles.push_back(std::move(h).value());
        }
      }
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int64_t c = -16; c < chunks; ++c) {  // negative chunks warm up
        const Nanos t0 = clock.Now();
        for (int i = 0; i < kChunk; ++i) {
          const auto& [key, p] =
              keys[t][rng.NextBounded(kKeysPerThread)];
          if (owned) {
            (void)handles[handle_of[p]]->Update(key, [](Bytes* v) {
              if (v->size() != 8) v->assign(8, 0);
              uint64_t n;
              std::memcpy(&n, v->data(), 8);
              ++n;
              std::memcpy(v->data(), &n, 8);
            });
          } else {
            auto current = grid.Get("agg", key);
            uint64_t n = 0;
            if (current.ok() && current.value().has_value()) {
              std::memcpy(&n, current.value()->data(), 8);
            }
            ++n;
            Bytes value(8);
            std::memcpy(value.data(), &n, 8);
            (void)grid.Put("agg", key, value);
          }
        }
        const Nanos t1 = clock.Now();
        if (c >= 0) {
          latency[t].Record(std::max<Nanos>(1, (t1 - t0) / kChunk));
          elapsed[t] += t1 - t0;
        }
      }
      if (owned) {
        handles.clear();
        for (const auto& [key, p] : keys[t]) {
          if (handle_of[p] >= 0) {
            handle_of[p] = -1;
            (void)grid.ownership().Release(p, t);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  Histogram merged;
  Nanos total_nanos = 0;
  for (int t = 0; t < kThreads; ++t) {
    (void)merged.Merge(latency[t]);
    total_nanos = std::max(total_nanos, elapsed[t]);
  }
  const int64_t items = chunks * kChunk * kThreads;
  return jet::bench::MakeScenario("contended_keyed_aggregation",
                                  owned ? "owned" : "locked", items,
                                  total_nanos, merged);
}

int RunJsonScenarios(const std::string& path) {
  constexpr int64_t kChunks = 4096;  // 1M items per scenario run
  std::vector<jet::bench::BenchScenario> results;
  // Shuffle-heavy hop: broadcast fan-out of 4 consumers, the worst case
  // for the copy-per-bucket OfferToAll the batched path replaced.
  results.push_back(RunExchangeHop("shuffle_exchange", /*batched=*/false, 4, kChunks));
  results.push_back(RunExchangeHop("shuffle_exchange", /*batched=*/true, 4, kChunks));
  // Unicast hop: single consumer, where OfferToAll degenerates to a pure
  // move on the batched path.
  results.push_back(RunExchangeHop("unicast_exchange", /*batched=*/false, 1, kChunks));
  results.push_back(RunExchangeHop("unicast_exchange", /*batched=*/true, 1, kChunks));
  // Keyed aggregation under cross-thread lock contention vs single-writer
  // owned partition access (§4.1 ownership model).
  results.push_back(RunContendedKeyedAggregation(/*owned=*/false, kChunks / 4));
  results.push_back(RunContendedKeyedAggregation(/*owned=*/true, kChunks / 4));

  if (!jet::bench::WriteBenchJson(path, "engine_micro", results)) return 1;
  for (const jet::bench::BenchScenario& r : results) jet::bench::PrintScenarioRow(r);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json_path = "BENCH_engine_micro.json";
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  if (!json_path.empty()) return RunJsonScenarios(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
