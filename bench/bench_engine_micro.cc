// Microbenchmarks of the real engine's building blocks (google-benchmark).
//
// These back the paper's systems claims at component level: wait-free SPSC
// queues (§3.2), cheap partition routing (§4.1), O(1) latency recording,
// and the per-event cost of the windowed accumulate stage that bounds the
// "2M events per second per CPU-core" capacity (§4.6).
#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/spsc_queue.h"
#include "core/aggregate.h"
#include "core/item.h"
#include "core/processors_window.h"
#include "imdg/grid.h"
#include "imdg/partition_table.h"

namespace {

using namespace jet;        // NOLINT
using namespace jet::core;  // NOLINT

void BM_SpscQueuePushPop(benchmark::State& state) {
  SpscQueue<int64_t> queue(1024);
  int64_t v = 0;
  for (auto _ : state) {
    queue.TryPush(v);
    int64_t out;
    queue.TryPop(out);
    benchmark::DoNotOptimize(out);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscQueuePushPop);

void BM_SpscQueueBatch64(benchmark::State& state) {
  SpscQueue<int64_t> queue(1024);
  std::vector<int64_t> batch(64);
  for (auto _ : state) {
    queue.PushBatch(batch.begin(), batch.end());
    size_t drained = queue.DrainTo([](int64_t&&) {}, 64);
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SpscQueueBatch64);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) % 100'000'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HashU64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = HashU64(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashU64);

void BM_ItemBoxing(benchmark::State& state) {
  for (auto _ : state) {
    Item item = Item::Data<int64_t>(42, 1000, 7);
    benchmark::DoNotOptimize(item);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ItemBoxing);

void BM_PartitionForHash(benchmark::State& state) {
  uint64_t x = 99;
  for (auto _ : state) {
    auto p = imdg::PartitionForHash(x, imdg::kDefaultPartitionCount);
    benchmark::DoNotOptimize(p);
    ++x;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionForHash);

void BM_GridPut(benchmark::State& state) {
  imdg::DataGrid grid(/*backup_count=*/1);
  (void)grid.AddMember(0);
  (void)grid.AddMember(1);
  Bytes key(8), value(64);
  uint64_t k = 0;
  for (auto _ : state) {
    std::memcpy(key.data(), &k, 8);
    benchmark::DoNotOptimize(grid.Put("bench", key, value));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridPut);

void BM_GridGet(benchmark::State& state) {
  imdg::DataGrid grid(/*backup_count=*/1);
  (void)grid.AddMember(0);
  (void)grid.AddMember(1);
  Bytes value(64);
  for (uint64_t k = 0; k < 10'000; ++k) {
    Bytes key(8);
    std::memcpy(key.data(), &k, 8);
    (void)grid.Put("bench", key, value);
  }
  uint64_t k = 0;
  Bytes key(8);
  for (auto _ : state) {
    uint64_t lookup = k % 10'000;
    std::memcpy(key.data(), &lookup, 8);
    benchmark::DoNotOptimize(grid.Get("bench", key));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridGet);

// Per-event cost of the keyed windowed accumulation (stage 1) — the
// dominant per-event work of Q5.
void BM_WindowAccumulate(benchmark::State& state) {
  const int64_t keys = state.range(0);
  auto op = CountingAggregate<int64_t>();
  AccumulateByFrameP<int64_t, int64_t, int64_t> processor(
      op, [](const int64_t& v) { return static_cast<uint64_t>(v); },
      WindowDef::Sliding(100 * kNanosPerMilli, 10 * kNanosPerMilli));
  Outbox outbox(1, 4096);
  ProcessorContext ctx;
  ctx.outbox = &outbox;
  static ManualClock clock(0);
  ctx.clock = &clock;
  (void)processor.Init(&ctx);

  Inbox inbox;
  int64_t ts = 0;
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    inbox.Clear();
    for (int i = 0; i < 256; ++i) {
      auto key = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(keys)));
      inbox.Add(Item::Data<int64_t>(key, ts, HashU64(static_cast<uint64_t>(key))));
      ts += 1000;
    }
    state.ResumeTiming();
    processor.Process(0, &inbox);
    // Periodically flush closed frames so state stays bounded.
    if ((ts / 1000) % (1 << 16) == 0) {
      (void)processor.TryProcessWatermark(ts - 20 * kNanosPerMilli);
      outbox.bucket(0).clear();
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_WindowAccumulate)->Arg(100)->Arg(10'000)->Arg(1'000'000);

}  // namespace

BENCHMARK_MAIN();
