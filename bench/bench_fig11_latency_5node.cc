// Reproduces Figure 11: "Latency for NEXMark queries on a 5-node cluster"
// (queries 1, 2, 5, 8, 13; 1M events/s; 10ms window trigger; fault
// tolerance disabled per §7.5).
//
// Expected shape: map/filter queries at or below ~1ms at p99.99; join and
// windowed queries at ~11-12ms p99.99 with >90% of events at <=2ms.
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace jet;
  using namespace jet::sim;
  bench::PrintHeader("Figure 11: latency distributions, 5-node cluster, 1M events/s");
  for (int query : {1, 2, 5, 8, 13}) {
    SimConfig c;
    c.profile = ProfileForQuery(query);
    c.nodes = 5;
    c.cores_per_node = 12;
    c.events_per_second = 1e6;
    c.duration = 120 * kNanosPerSecond;
    c.warmup = 20 * kNanosPerSecond;
    SimResult r = RunClusterSim(c);
    char label[32];
    std::snprintf(label, sizeof(label), "Query %d", query);
    bench::PrintPercentileCurve(label, r.latency);
  }
  std::printf("\npaper anchors: joins ~11-12ms p99.99, >90%% of events <=2ms;\n"
              "simple queries <=1ms at p99.99.\n");
  return 0;
}
