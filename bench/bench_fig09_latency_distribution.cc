// Reproduces Figure 9: "Distribution of latencies of all NEXMark queries
// for 1M events per second and cluster size of DOP=240 (20 nodes)."
//
// Expected shape (§7.2): the full percentile curves; p99.9 at most ~10ms in
// the worst case, with the simple queries an order of magnitude below the
// windowed ones at every percentile.
#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader(
      "Figure 9: latency distribution, all queries, 1M events/s, DOP=240 (20 nodes)");

  for (int query : {1, 2, 5, 8, 13}) {
    SimConfig c;
    c.profile = ProfileForQuery(query);
    c.nodes = 20;
    c.cores_per_node = 12;
    c.events_per_second = 1e6;
    c.duration = 120 * kNanosPerSecond;
    c.warmup = 20 * kNanosPerSecond;
    SimResult r = RunClusterSim(c);
    char label[32];
    std::snprintf(label, sizeof(label), "Query %d", query);
    bench::PrintPercentileCurve(label, r.latency);
  }

  std::printf("\npaper anchor: worst-case p99.9 ~10ms across the query set.\n");
  return 0;
}
