// Reproduces Figure 9: "Distribution of latencies of all NEXMark queries
// for 1M events per second and cluster size of DOP=240 (20 nodes)."
//
// Expected shape (§7.2): the full percentile curves; p99.9 at most ~10ms in
// the worst case, with the simple queries an order of magnitude below the
// windowed ones at every percentile.
#include "bench/bench_util.h"
#include "core/job.h"
#include "nexmark/queries.h"
#include "sim/cluster_sim.h"

namespace {

using namespace jet;  // NOLINT

// Runs one query on the real engine and prints the jet::obs per-vertex
// breakdown next to its end-to-end percentile curve, so the latency tail
// can be attributed to the vertex that produces it (the profiler view the
// paper's Management Center exposes, §2/§3.2).
void EngineVertexBreakdown(int query, double rate, Nanos duration) {
  nexmark::QueryConfig config;
  config.events_per_second = rate;
  config.duration = duration;
  config.window_size = 500 * kNanosPerMilli;
  config.window_slide = 50 * kNanosPerMilli;
  config.watermark_interval = 5 * kNanosPerMilli;
  auto query_build = nexmark::BuildQuery(query, config);
  if (!query_build.ok()) return;
  auto dag = (*query_build)->pipeline.ToDag();
  if (!dag.ok()) return;
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  if (!job.ok() || !(*job)->Start().ok() || !(*job)->Join().ok()) {
    std::printf("Q%-2d engine run failed\n", query);
    return;
  }
  Histogram h = (*query_build)->MergedLatency();
  char label[48];
  std::snprintf(label, sizeof(label), "Q%d on the real engine (this host)", query);
  bench::PrintLatencyRow(label, h);
  bench::PrintVertexBreakdown((*job)->Metrics());
}

}  // namespace

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader(
      "Figure 9: latency distribution, all queries, 1M events/s, DOP=240 (20 nodes)");

  for (int query : {1, 2, 5, 8, 13}) {
    SimConfig c;
    c.profile = ProfileForQuery(query);
    c.nodes = 20;
    c.cores_per_node = 12;
    c.events_per_second = 1e6;
    c.duration = 120 * kNanosPerSecond;
    c.warmup = 20 * kNanosPerSecond;
    SimResult r = RunClusterSim(c);
    char label[32];
    std::snprintf(label, sizeof(label), "Query %d", query);
    bench::PrintPercentileCurve(label, r.latency);
  }

  bench::PrintHeader("engine cross-check: per-vertex call-time profile (jet::obs)");
  for (int query : {1, 5}) {
    EngineVertexBreakdown(query, 100'000, 2 * kNanosPerSecond);
  }

  std::printf("\npaper anchor: worst-case p99.9 ~10ms across the query set.\n");
  return 0;
}
