// ShuffleBench workload bench (Henning et al., arXiv 2403.04570): large
// shuffles over up to 1M keys with configurable per-key matcher state,
// measured at high percentiles — the regime where the paper's 99.99th-
// percentile claim actually gets stressed by state size, not just by
// queue hops.
//
// Emits BENCH_shufflebench.json (same schema family as
// BENCH_engine_micro.json, via the shared bench_util.h writer). Two
// scenario families:
//
//   shuffle_keys_*   one shuffle hop as the engine pays for it: generate
//                    the record, encode it into a DATA frame through the
//                    registered kShuffleBenchRecord wire codec, decode,
//                    and fold it into the windowed per-key matcher state
//                    (AccumulateByFrameP). Sweeps key cardinality
//                    (1e4/1e5/1e6), state bytes per key, and Zipf skew.
//                    Window flushes run inside the timed region, so frame
//                    eviction cost lands in the tail where it belongs.
//
//   imdg_load_1m     1M entries put into a replicated DataGrid, per-put
//                    latency. Mode "unreserved" is the naive bulk load —
//                    its p99.99 is dominated by incremental per-partition
//                    unordered_map rehashes; "reserved" pre-sizes stores
//                    via DataGrid::Reserve and flattens that tail. The
//                    pair is the committed before/after evidence for the
//                    IMDG scaling limit this workload exposed.
//
// --smoke shrinks item counts (same scenario names) for the CI lane.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/inbox_outbox.h"
#include "core/item.h"
#include "core/processors_window.h"
#include "imdg/grid.h"
#include "net/wire_format.h"
#include "shufflebench/generator.h"
#include "shufflebench/matcher.h"
#include "shufflebench/wire.h"

namespace {

using namespace jet;                // NOLINT
using namespace jet::core;          // NOLINT
using namespace jet::shufflebench;  // NOLINT

// One shuffle hop, chunk by chunk: generate -> wire encode -> wire decode
// -> windowed matcher accumulate. Latency is per-item nanoseconds per
// 256-item chunk (the bench_engine_micro convention), so watermark
// flushes and state growth show up as tail samples.
jet::bench::BenchScenario RunShuffleScenario(const std::string& scenario,
                                             const std::string& mode,
                                             GeneratorConfig config,
                                             int32_t state_bytes_per_key,
                                             Nanos window_size, int64_t items) {
  constexpr int kChunk = 256;
  constexpr int kFlushEveryChunks = 64;
  const int64_t chunks = items / kChunk;

  (void)RegisterShuffleBenchPayload();
  RecordGenerator gen(config);
  auto op = MatcherAggregate(state_bytes_per_key);
  AccumulateByFrameP<Record, MatcherState, int64_t> matcher(
      op, [](const Record& rec) { return rec.key; },
      WindowDef::Tumbling(window_size));

  Outbox outbox(1, 1 << 16);
  ProcessorContext ctx;
  ctx.outbox = &outbox;
  static ManualClock manual_clock(0);
  ctx.clock = &manual_clock;
  (void)matcher.Init(&ctx);

  net::FrameHeader header;
  header.edge_index = 0;
  header.from_node = 0;
  header.to_node = 1;

  Inbox inbox;
  Histogram latency;
  const Clock& clock = WallClock::Global();
  int64_t seq = 0;
  Nanos ts = 0;
  int64_t measured_items = 0;
  Nanos measured_nanos = 0;

  for (int64_t c = -16; c < chunks; ++c) {  // negative chunks warm up
    const Nanos t0 = clock.Now();
    std::vector<Item> batch;
    batch.reserve(kChunk);
    for (int i = 0; i < kChunk; ++i) {
      Record rec = gen.MakeRecord(seq++);
      const uint64_t key_hash = RecordGenerator::KeyHash(rec);
      batch.push_back(Item::Data<Record>(std::move(rec), ts, key_hash));
      ts += 1000;  // 1 us of event time per record
    }
    BytesWriter w;
    if (!net::EncodeDataFrame(header, batch, &w).ok()) std::abort();
    auto decoded = net::DecodeFrame(w.buffer());
    if (!decoded.ok()) std::abort();
    for (Item& item : decoded->items) inbox.Add(std::move(item));
    matcher.Process(0, &inbox);
    if ((c & (kFlushEveryChunks - 1)) == 0) {
      (void)matcher.TryProcessWatermark(ts - kNanosPerMilli);
      outbox.bucket(0).clear();
    }
    const Nanos t1 = clock.Now();
    if (c >= 0) {
      latency.Record(std::max<Nanos>(1, (t1 - t0) / kChunk));
      measured_items += kChunk;
      measured_nanos += t1 - t0;
    }
  }

  return jet::bench::MakeScenario(scenario, mode, measured_items, measured_nanos,
                                  latency);
}

// Bulk-loads `entries` 8-byte-key / 64-byte-value entries into a
// 2-member replicated grid, timing every Put. `reserve` pre-sizes the
// per-partition stores first (DataGrid::Reserve) — the fix for the
// rehash-spike tail the unreserved mode measures.
jet::bench::BenchScenario RunImdgLoad(const std::string& scenario,
                                      const std::string& mode, int64_t entries,
                                      bool reserve) {
  imdg::DataGrid grid(/*backup_count=*/1, /*partition_count=*/271);
  (void)grid.AddMember(1);
  (void)grid.AddMember(2);
  const std::string map_name = "shufflebench_load";
  if (reserve) {
    if (!grid.Reserve(map_name, entries).ok()) std::abort();
  }

  Bytes value(64);
  for (size_t i = 0; i < value.size(); ++i) value[i] = static_cast<uint8_t>(i);

  Histogram latency;
  const Clock& clock = WallClock::Global();
  int64_t measured_items = 0;
  Nanos measured_nanos = 0;
  for (int64_t i = 0; i < entries; ++i) {
    BytesWriter key;
    key.WriteU64(HashU64(static_cast<uint64_t>(i)));
    const Nanos t0 = clock.Now();
    if (!grid.Put(map_name, key.buffer(), value).ok()) std::abort();
    const Nanos t1 = clock.Now();
    latency.Record(std::max<Nanos>(1, t1 - t0));
    ++measured_items;
    measured_nanos += t1 - t0;
  }

  return jet::bench::MakeScenario(scenario, mode, measured_items, measured_nanos,
                                  latency);
}

int RunScenarios(const std::string& json_path, bool smoke) {
  const int64_t shuffle_items = smoke ? 64 * 1024 : 1024 * 1024;
  const int64_t load_entries = smoke ? 128 * 1024 : 1024 * 1024;
  const Nanos window = 50 * kNanosPerMilli;
  const Nanos heavy_window = 250 * kNanosPerMilli;

  auto cfg = [](int64_t cardinality, double zipf = 0.0) {
    GeneratorConfig c;
    c.key_cardinality = cardinality;
    c.payload_bytes = 64;
    c.zipf_exponent = zipf;
    return c;
  };

  std::vector<jet::bench::BenchScenario> results;
  results.push_back(RunShuffleScenario("shuffle_keys_1e4", "state_64B", cfg(10'000),
                                       64, window, shuffle_items));
  results.push_back(RunShuffleScenario("shuffle_keys_1e5", "state_64B", cfg(100'000),
                                       64, window, shuffle_items));
  results.push_back(RunShuffleScenario("shuffle_keys_1e6", "state_64B",
                                       cfg(1'000'000), 64, window, shuffle_items));
  results.push_back(RunShuffleScenario("shuffle_keys_1e5", "state_1KiB",
                                       cfg(100'000), 1024, window, shuffle_items));
  // The headline: 1M-key cardinality with 4 KiB of matcher state per key
  // and a wide window, so hundreds of thousands of heavy keys are live at
  // once.
  results.push_back(RunShuffleScenario("shuffle_keys_1e6", "state_4KiB",
                                       cfg(1'000'000), 4096, heavy_window,
                                       shuffle_items));
  results.push_back(RunShuffleScenario("shuffle_keys_1e6_zipf", "state_64B",
                                       cfg(1'000'000, 1.0), 64, window,
                                       shuffle_items));
  results.push_back(RunImdgLoad("imdg_load_1m", "unreserved", load_entries,
                                /*reserve=*/false));
  results.push_back(RunImdgLoad("imdg_load_1m", "reserved", load_entries,
                                /*reserve=*/true));

  if (!json_path.empty() &&
      !jet::bench::WriteBenchJson(json_path, "shufflebench", results)) {
    return 1;
  }
  for (const jet::bench::BenchScenario& s : results) jet::bench::PrintScenarioRow(s);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json_path = "BENCH_shufflebench.json";
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg == "--smoke") smoke = true;
  }
  return RunScenarios(json_path, smoke);
}
