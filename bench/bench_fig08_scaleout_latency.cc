// Reproduces Figure 8: "99th percentile latency for all NEXMark queries for
// fixed input throughput of 1M events/s", scaling the cluster from 1 node
// (DOP 12) to 20 nodes (DOP 240).
//
// Expected shape (§7.2): p99 stays in single-digit milliseconds everywhere;
// simple map/filter queries (Q1, Q2) add almost no latency; the windowed
// queries (Q5, Q8) are the most expensive; p99.99 never exceeds ~16ms even
// at DOP 240.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace jet;
  using namespace jet::sim;

  bench::PrintHeader("Figure 8: p99 latency, all queries, 1M events/s, DOP 12..240");

  const int nodes_sweep[] = {1, 5, 10, 20};
  for (int query : {1, 2, 5, 8, 13}) {
    std::printf("\nQuery %d:\n", query);
    for (int nodes : nodes_sweep) {
      SimConfig c;
      c.profile = ProfileForQuery(query);
      c.nodes = nodes;
      c.cores_per_node = 12;
      c.events_per_second = 1e6;
      c.duration = 60 * kNanosPerSecond;
      c.warmup = 10 * kNanosPerSecond;
      SimResult r = RunClusterSim(c);
      char label[64];
      std::snprintf(label, sizeof(label), "  DOP %3d (%2d nodes)", nodes * 12, nodes);
      std::printf("%-24s p99=%7.2f ms   p99.99=%7.2f ms%s\n", label,
                  static_cast<double>(r.latency.ValueAtQuantile(0.99)) / 1e6,
                  static_cast<double>(r.latency.ValueAtQuantile(0.9999)) / 1e6,
                  r.saturated ? "  SATURATED" : "");
    }
  }

  std::printf(
      "\npaper anchors: p99.99 <= 16ms worst case (Q5 at DOP 240); Q1/Q2 near zero;\n"
      "windowed/join queries dominated by the 10ms window trigger cadence.\n");
  return 0;
}
