// Quickstart: the paper's Listing 1 ("Word count in Jet's Pipeline
// abstraction") in jetsim's C++ Pipeline API.
//
// A stream of text lines is tokenized, grouped by word, counted over
// 100 ms tumbling windows, and printed. Run: ./quickstart
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/job.h"
#include "pipeline/pipeline.h"

namespace {

using namespace jet;  // NOLINT

struct Word {
  std::string text;
  uint64_t hash = 0;
};

const char* kSampleLines[] = {
    "jet is a distributed stream processor",
    "jet keeps latency low at the tail",
    "the tasklet model keeps the cores busy",
    "stream processing at the ninety nine point nine ninth percentile",
};

}  // namespace

int main() {
  pipeline::Pipeline p;

  // Source: an infinite stream of text lines at 10k lines/s for 1 second.
  core::GeneratorSourceP<std::string>::Options source_options;
  source_options.events_per_second = 10'000;
  source_options.duration = kNanosPerSecond;
  source_options.watermark_interval = 10 * kNanosPerMilli;
  auto lines = p.ReadFrom<std::string>(
      "lines",
      [](int64_t seq) {
        const char* line = kSampleLines[seq % std::size(kSampleLines)];
        return std::make_pair(std::string(line), HashU64(static_cast<uint64_t>(seq)));
      },
      source_options);

  // Tokenize (the paper's flatMap(line -> traverseArray(line.split(..)))).
  auto words = lines.FlatMap<Word>("tokenize", [](const std::string& line,
                                                  std::vector<Word>* out) {
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) {
      out->push_back(Word{token, HashBytes(token.data(), token.size())});
    }
  });

  // groupingKey(wholeItem()).aggregate(counting()) over tumbling windows.
  auto counts =
      words.GroupingKey([](const Word& w) { return w.hash; })
          .Window(core::WindowDef::Tumbling(100 * kNanosPerMilli))
          .Aggregate<int64_t, int64_t>("count", core::CountingAggregate<Word>());

  auto collected = counts.CollectTo("sink");

  // Plan and run on the local engine.
  auto dag = p.ToDag();
  if (!dag.ok()) {
    std::fprintf(stderr, "plan error: %s\n", dag.status().ToString().c_str());
    return 1;
  }
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  if (!job.ok() || !(*job)->Start().ok() || !(*job)->Join().ok()) {
    std::fprintf(stderr, "job failed\n");
    return 1;
  }

  // Aggregate the per-window counts into totals for display.
  std::map<uint64_t, int64_t> totals;
  for (const auto& r : collected->Snapshot()) totals[r.key] += r.value;

  std::printf("word-count (by word hash) over %zu windows:\n",
              collected->Snapshot().size());
  int shown = 0;
  for (const auto& [hash, count] : totals) {
    std::printf("  %016llx : %lld\n", static_cast<unsigned long long>(hash),
                static_cast<long long>(count));
    if (++shown >= 10) break;
  }
  std::printf("distinct words: %zu\n", totals.size());
  return 0;
}
