// Process-mode demo: the §4.4 failover story with real OS processes.
//
// A ProcessCluster coordinator forks three jet_member processes, wires
// them over Unix-domain sockets (control to the coordinator, data
// member-to-member), runs the exactly-once windowed-count job, waits for
// a snapshot to commit, then `kill -9`s member 1 mid-job. The coordinator
// must detect the death from the control socket's EOF, stop the attempt
// on the survivors, respawn the dead member under its backoff budget,
// restore from the last committed snapshot at full parallelism and finish
// with exactly-once results.
//
// Exits non-zero unless the verification passed — CI runs this as the
// process-mode smoke and greps the printed diagnostics dump for the
// proc.* self-healing gauges. Pass --no-kill for the happy path only.
//
// The jet_member binary path is baked in at compile time
// (JETSIM_MEMBER_BIN) so the demo runs from any build directory.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "procmode/process_cluster.h"

#ifndef JETSIM_MEMBER_BIN
#error "JETSIM_MEMBER_BIN must point at the jet_member executable"
#endif

namespace {

int Fail(const jet::Status& status, const char* what) {
  std::fprintf(stderr, "FAIL (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool kill_member = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-kill") == 0) kill_member = false;
  }

  using jet::procmode::ProcessCluster;
  ProcessCluster::Options options;
  options.member_binary = JETSIM_MEMBER_BIN;
  // Unix-domain socket paths are limited to ~108 bytes; keep it short.
  std::string work_dir = "/tmp/jetproc-demo-XXXXXX";
  if (::mkdtemp(work_dir.data()) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  options.work_dir = work_dir;
  options.initial_members = 3;
  options.threads_per_member = 1;
  options.job_params.events_per_second = 20'000;
  options.job_params.duration = kill_member ? 1'500 * jet::kNanosPerMilli
                                            : 600 * jet::kNanosPerMilli;
  options.snapshot_interval = 50 * jet::kNanosPerMilli;

  ProcessCluster cluster(options);
  if (jet::Status s = cluster.Start(); !s.ok()) return Fail(s, "start");
  std::printf("spawned %d member processes under %s\n",
              cluster.live_member_count(), work_dir.c_str());

  if (jet::Status s = cluster.SubmitWindowedJob(); !s.ok()) {
    return Fail(s, "submit");
  }

  if (kill_member) {
    if (jet::Status s =
            cluster.WaitForCommittedSnapshot(1, 60 * jet::kNanosPerSecond);
        !s.ok()) {
      return Fail(s, "await snapshot");
    }
    std::printf("snapshot %lld committed; kill -9 member 1\n",
                static_cast<long long>(cluster.last_committed_snapshot()));
    if (jet::Status s = cluster.KillMember(1); !s.ok()) return Fail(s, "kill");
  }

  if (jet::Status s = cluster.AwaitJobCompletion(180 * jet::kNanosPerSecond);
      !s.ok()) {
    return Fail(s, "join");
  }

  jet::Status verdict = cluster.VerifyExactlyOnce();
  if (!verdict.ok()) return Fail(verdict, "exactly-once");
  std::printf(
      "exactly-once verified: %lld events across %lld attempt(s), "
      "%d member(s) alive, %lld respawn(s), last committed snapshot %lld\n",
      static_cast<long long>(cluster.expected_total()),
      static_cast<long long>(cluster.attempts()), cluster.live_member_count(),
      static_cast<long long>(cluster.respawn_count()),
      static_cast<long long>(cluster.last_committed_snapshot()));
  if (kill_member && cluster.respawn_count() < 1) {
    std::fprintf(stderr, "FAIL: killed a member but nothing was respawned\n");
    return 1;
  }
  if (kill_member && cluster.live_member_count() != options.initial_members) {
    std::fprintf(stderr, "FAIL: cluster did not heal back to full membership\n");
    return 1;
  }

  // Self-healing diagnostics, Prometheus exposition: CI greps these.
  ProcessCluster::Diagnostics diag = cluster.DiagnosticsDump();
  std::printf("--- diagnostics ---\n%s", diag.prometheus.c_str());
  cluster.Shutdown();
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
  return 0;
}
