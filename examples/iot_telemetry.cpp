// IoT / oil-rig telemetry (§6 "Internet of Things" and "Oil Rig Drilling"):
// up to 70 high-frequency sensor channels stream vibration/RPM readings;
// the job maintains sliding-window aggregates per channel and flags
// channels whose short-term average exceeds a threshold, "enabling human
// operators to immediately act on the streaming data".
//
// The paper's rig workload computes stateful aggregates over ~10K
// messages/second keeping latency under 10 ms — mirrored here.
#include <cmath>
#include <cstdio>

#include "core/job.h"
#include "pipeline/pipeline.h"

namespace {

using namespace jet;  // NOLINT

struct Reading {
  int32_t channel = 0;
  double value = 0;  // e.g. vibration amplitude
};

constexpr int32_t kChannels = 70;
constexpr double kAlertThreshold = 0.75;

}  // namespace

int main() {
  pipeline::Pipeline p;

  // 10k readings/s across 70 channels for 3 seconds; channel 13 drifts
  // upward so alerts fire.
  core::GeneratorSourceP<Reading>::Options options;
  options.events_per_second = 10'000;
  options.duration = 3 * kNanosPerSecond;
  options.watermark_interval = 20 * kNanosPerMilli;
  auto readings = p.ReadFrom<Reading>(
      "sensors",
      [](int64_t seq) {
        uint64_t h = HashU64(static_cast<uint64_t>(seq));
        Reading r;
        r.channel = static_cast<int32_t>(h % kChannels);
        double base = 0.2 + 0.3 * std::sin(static_cast<double>(seq) / 500.0);
        r.value = r.channel == 13 ? base + static_cast<double>(seq) / 40'000.0
                                  : base + static_cast<double>((h >> 20) % 100) / 500.0;
        return std::make_pair(r, HashU64(static_cast<uint64_t>(r.channel)));
      },
      options);

  // Sliding 500ms window, 100ms slide: average amplitude per channel.
  auto averages =
      readings.GroupingKey([](const Reading& r) { return static_cast<uint64_t>(r.channel); })
          .Window(core::WindowDef::Sliding(500 * kNanosPerMilli, 100 * kNanosPerMilli))
          .Aggregate<core::AvgAcc, double>(
              "avg-amplitude",
              core::AveragingAggregate<Reading>([](const Reading& r) {
                return static_cast<int64_t>(r.value * 1e6);  // fixed-point
              }));

  // Alert stage: channels above the threshold.
  auto alerts = averages.Filter("over-threshold", [](const core::WindowResult<double>& w) {
    return w.value / 1e6 > kAlertThreshold;
  });

  auto alert_log = alerts.CollectTo("alerts");
  core::LatencyRecorder recorder;
  averages.WriteToLatencySink("aggregate-latency", &recorder);

  auto dag = p.ToDag();
  if (!dag.ok()) {
    std::fprintf(stderr, "plan error: %s\n", dag.status().ToString().c_str());
    return 1;
  }
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  if (!job.ok() || !(*job)->Start().ok() || !(*job)->Join().ok()) {
    std::fprintf(stderr, "job failed\n");
    return 1;
  }

  Histogram h = recorder.Merged();
  std::printf("per-channel window aggregates emitted: %lld\n",
              static_cast<long long>(h.count()));
  std::printf("aggregate latency: %s\n", h.Summary(1e6, "ms").c_str());

  auto alert_list = alert_log->Snapshot();
  std::printf("alerts fired: %zu\n", alert_list.size());
  int shown = 0;
  for (const auto& a : alert_list) {
    std::printf("  ALERT channel=%llu avg=%.3f window_end=+%.1fms\n",
                static_cast<unsigned long long>(a.key), a.value / 1e6,
                static_cast<double>(a.window_end % (10 * kNanosPerSecond)) / 1e6);
    if (++shown >= 5) break;
  }
  std::printf("10ms SLA at p99: %s\n",
              h.ValueAtQuantile(0.99) <= 10 * kNanosPerMilli ? "MET" : "MISSED");
  return 0;
}
