// Real-time payments (§6 "Real-time Payments"): an instant-payment
// processing backbone where "quick recovery mechanisms ... provide high
// availability to the instant payments application".
//
// This example wires the full §4.5 exactly-once-delivery stack on the real
// engine:
//   acknowledging broker (payment instructions arrive over MQ)
//     -> validation & anti-fraud stages
//     -> transactional sink (settled payments become visible only when the
//        enclosing snapshot commits)
// and then kills the job mid-stream, restores it from the last committed
// snapshot, and verifies that every payment settled exactly once.
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

#include "core/dag.h"
#include "core/job.h"
#include "core/processors_basic.h"
#include "core/processors_external.h"
#include "imdg/grid.h"
#include "imdg/snapshot_store.h"

namespace {

using namespace jet;  // NOLINT

struct Payment {
  int64_t id = 0;
  int64_t payer = 0;
  int64_t payee = 0;
  int64_t amount_cents = 0;
  bool fraud_checked = false;
  bool valid = false;
};

constexpr int64_t kPayments = 30'000;

Payment MakePayment(int64_t id) {
  uint64_t h = HashU64(static_cast<uint64_t>(id));
  Payment p;
  p.id = id;
  p.payer = static_cast<int64_t>(h % 1000);
  p.payee = static_cast<int64_t>((h >> 17) % 1000);
  p.amount_cents = 100 + static_cast<int64_t>((h >> 31) % 500'000);
  return p;
}

}  // namespace

int main() {
  auto broker = std::make_shared<core::AckingBroker<Payment>>();
  auto settled = std::make_shared<core::TransactionalCollector<Payment>>();

  // The payment orchestrator publishes XML-parsed instructions onto the MQ
  // (modeled by a publisher thread feeding the acknowledging broker).
  std::thread orchestrator([broker]() {
    for (int64_t id = 0; id < kPayments; ++id) {
      broker->Publish(id, MakePayment(id), id * 1000);
      if (id % 300 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Pipeline: broker -> validate -> anti-fraud -> transactional settlement.
  core::Dag dag;
  auto source = dag.AddVertex(
      "mq-source",
      [broker](const core::ProcessorMeta&) {
        return std::make_unique<core::AcknowledgingSourceP<Payment>>(
            broker, [](const Payment& p) { return HashU64(static_cast<uint64_t>(p.payer)); });
      },
      1);
  auto validate = dag.AddVertex(
      "validate",
      [](const core::ProcessorMeta&) {
        return core::MakeMapP<Payment, Payment>([](const Payment& p) {
          Payment out = p;
          out.valid = p.amount_cents > 0 && p.payer != p.payee;
          return out;
        });
      },
      1);
  auto antifraud = dag.AddVertex(
      "anti-fraud",
      [](const core::ProcessorMeta&) {
        // "a series of anti-fraud measures against the transaction before
        // settling" — invalid instructions are rejected here.
        return std::make_unique<core::FlatMapP<Payment, Payment>>(
            [](const Payment& p, std::vector<core::OutRecord<Payment>>* out) {
              if (!p.valid) return;  // rejected, never settles
              Payment checked = p;
              checked.fraud_checked = true;
              out->push_back(core::OutRecord<Payment>{checked, std::nullopt, std::nullopt});
            });
      },
      1);
  auto settle = dag.AddVertex(
      "settlement",
      [settled](const core::ProcessorMeta&) {
        return std::make_unique<core::TransactionalSinkP<Payment>>(settled);
      },
      1);
  dag.AddEdge(source, validate);
  dag.AddEdge(validate, antifraud);
  dag.AddEdge(antifraud, settle);

  imdg::DataGrid grid(/*backup_count=*/1);
  (void)grid.AddMember(0);
  imdg::SnapshotStore store(&grid);

  core::JobParams params;
  params.dag = &dag;
  params.cooperative_threads = 2;
  params.config.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  params.config.snapshot_interval = 25 * kNanosPerMilli;
  params.snapshot_store = &store;
  params.job_id = 1;

  auto job1 = core::Job::Create(params);
  if (!job1.ok() || !(*job1)->Start().ok()) {
    std::fprintf(stderr, "job start failed\n");
    return 1;
  }
  std::printf("payments job running (exactly-once, 25ms checkpoints)\n");

  // Crash mid-stream, after some payments have settled.
  for (int i = 0; i < 10'000; ++i) {
    if ((*job1)->last_committed_snapshot() >= 3 && settled->VisibleCount() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  size_t settled_before = settled->VisibleCount();
  int64_t restore_id = (*job1)->last_committed_snapshot();
  (*job1)->Cancel();
  (void)(*job1)->Join();
  job1->reset();
  std::printf("CRASH injected: %zu payments settled, restoring from snapshot %lld\n",
              settled_before, static_cast<long long>(restore_id));

  orchestrator.join();

  // Recovery: the broker re-sends unacknowledged instructions; the source
  // dedups by record id; the sink re-commits its prepared transaction.
  params.restore_snapshot_id = restore_id;
  auto job2 = core::Job::Create(params);
  if (!job2.ok() || !(*job2)->Start().ok()) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  // Not every instruction settles: self-payments are rejected upstream.
  int64_t expected_settled = 0;
  for (int64_t id = 0; id < kPayments; ++id) {
    Payment p = MakePayment(id);
    if (p.payer != p.payee && p.amount_cents > 0) ++expected_settled;
  }
  for (int i = 0;
       i < 30'000 && settled->VisibleCount() < static_cast<size_t>(expected_settled);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*job2)->Cancel();
  (void)(*job2)->Join();

  auto visible = settled->Visible();
  std::set<int64_t> unique;
  for (const auto& p : visible) unique.insert(p.id);
  bool all_checked = true;
  for (const auto& p : visible) all_checked &= p.fraud_checked && p.valid;

  std::printf("settled payments: %zu (distinct: %zu, expected: %lld; %lld rejected)\n",
              visible.size(), unique.size(), static_cast<long long>(expected_settled),
              static_cast<long long>(kPayments - expected_settled));
  std::printf("all settled payments validated + fraud-checked: %s\n",
              all_checked ? "yes" : "NO");
  bool exactly_once = visible.size() == static_cast<size_t>(expected_settled) &&
                      unique.size() == visible.size() && all_checked;
  std::printf("exactly-once settlement across the crash: %s\n",
              exactly_once ? "VERIFIED" : "VIOLATED");
  return exactly_once ? 0 : 1;
}
