// Command-line NEXMark runner: executes any implemented query on the real
// engine with configurable rate/duration/windows and prints the §7.1
// latency metrics — the "try it yourself" entry point for the repo.
//
//   nexmark_cli [query=5] [events_per_sec=100000] [seconds=2]
//               [window_ms=500] [slide_ms=50] [threads=2]
#include <cstdio>
#include <cstdlib>

#include "core/job.h"
#include "nexmark/queries.h"

int main(int argc, char** argv) {
  using namespace jet;  // NOLINT

  int query = argc > 1 ? std::atoi(argv[1]) : 5;
  double rate = argc > 2 ? std::atof(argv[2]) : 100'000;
  double seconds = argc > 3 ? std::atof(argv[3]) : 2;
  int64_t window_ms = argc > 4 ? std::atoll(argv[4]) : 500;
  int64_t slide_ms = argc > 5 ? std::atoll(argv[5]) : 50;
  int threads = argc > 6 ? std::atoi(argv[6]) : 2;

  if (!nexmark::IsQuerySupported(query)) {
    std::fprintf(stderr,
                 "unsupported query %d (supported: 1-8, 13)\n"
                 "usage: %s [query] [events_per_sec] [seconds] [window_ms] "
                 "[slide_ms] [threads]\n",
                 query, argv[0]);
    return 2;
  }

  nexmark::QueryConfig config;
  config.events_per_second = rate;
  config.duration = static_cast<Nanos>(seconds * 1e9);
  config.window_size = window_ms * kNanosPerMilli;
  config.window_slide = slide_ms * kNanosPerMilli;
  config.watermark_interval = 5 * kNanosPerMilli;

  std::printf("NEXMark Q%d: %.0f events/s for %.1fs, window %lldms slide %lldms, %d threads\n",
              query, rate, seconds, static_cast<long long>(window_ms),
              static_cast<long long>(slide_ms), threads);

  auto built = nexmark::BuildQuery(query, config);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  auto dag = (*built)->pipeline.ToDag();
  if (!dag.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", dag.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %zu vertices, %zu edges\n", dag->vertices().size(),
              dag->edges().size());

  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = threads;
  auto job = core::Job::Create(params);
  if (!job.ok()) {
    std::fprintf(stderr, "job failed: %s\n", job.status().ToString().c_str());
    return 1;
  }
  WallClock clock;
  Nanos t0 = clock.Now();
  if (!(*job)->Start().ok()) return 1;
  Status s = (*job)->Join();
  Nanos elapsed = clock.Now() - t0;
  if (!s.ok()) {
    std::fprintf(stderr, "execution failed: %s\n", s.ToString().c_str());
    return 1;
  }

  Histogram h = (*built)->MergedLatency();
  std::printf("\nresults: %lld in %.2fs wall\n", static_cast<long long>(h.count()),
              static_cast<double>(elapsed) / 1e9);
  std::printf("latency: %s\n", h.Summary(1e6, "ms").c_str());
  std::printf("\n%s", (*job)->Metrics().ToString().c_str());
  return 0;
}
