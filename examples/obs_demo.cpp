// Observability demo: runs a small distributed job on a 2-member
// in-process cluster and prints the Management-Center-style diagnostics
// dump (§2: "a web UI and REST API from where users can manage and
// monitor Jet jobs") — every tasklet's counters, queue-depth gauges, the
// event-loop profiler's per-call histograms, exchange flow-control state,
// and cluster-level IMDG/network counters.
//
// Prints the JSON document by default; pass --prom for the Prometheus
// text exposition. Pipe into the table renderer:
//
//     obs_demo | tools/metrics_dump.py
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "cluster/jet_cluster.h"
#include "core/processors_basic.h"

namespace {

using namespace jet;  // NOLINT

}  // namespace

int main(int argc, char** argv) {
  bool prometheus = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prom") == 0) prometheus = true;
  }

  cluster::ClusterConfig config;
  config.initial_nodes = 2;
  config.threads_per_node = 2;
  cluster::JetCluster jet_cluster(config);

  // source -> [distributed, partitioned] count: the distributed edge runs
  // the full flow-controlled exchange so its gauges show up in the dump.
  constexpr Nanos kDuration = 100 * kNanosPerMilli;
  core::Dag dag;
  auto source = dag.AddVertex(
      "source",
      [](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<int64_t>::Options opt;
        opt.events_per_second = 500'000;
        opt.duration = kDuration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<core::GeneratorSourceP<int64_t>>(
            [](int64_t seq) {
              return std::make_pair(seq, HashU64(static_cast<uint64_t>(seq)));
            },
            opt);
      },
      1);
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  auto count = dag.AddVertex(
      "count",
      [counter](const core::ProcessorMeta&) {
        return std::make_unique<core::CountSinkP<int64_t>>(counter);
      },
      1);
  core::Edge& e = dag.AddEdge(source, count);
  e.routing = core::RoutingPolicy::kPartitioned;
  e.distributed = true;

  auto job = jet_cluster.SubmitJob(&dag, core::JobConfig{}, /*job_id=*/1);
  if (!job.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", job.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*job)->Join(); !s.ok()) {
    std::fprintf(stderr, "job failed: %s\n", s.ToString().c_str());
    return 1;
  }

  cluster::JetCluster::Diagnostics dump = jet_cluster.DiagnosticsDump();
  std::fputs(prometheus ? dump.prometheus.c_str() : dump.json.c_str(), stdout);
  std::fputc('\n', stdout);
  return 0;
}
