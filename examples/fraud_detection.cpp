// Real-time rule execution (§6 "Real-time Rule Execution"): a banking user
// runs tens of business rules against each incoming transaction within a
// 2 ms budget, after enriching it with customer ML features held in the
// in-memory grid.
//
// The pipeline hash-joins the transaction stream against a batch "feature
// table" build side (the hybrid batch+stream pattern of Listing 2), applies
// a rule set, and measures the per-decision latency against the 2 ms SLA.
#include <cstdio>
#include <vector>

#include "core/job.h"
#include "pipeline/pipeline.h"

namespace {

using namespace jet;  // NOLINT

struct Transaction {
  int64_t customer = 0;
  int64_t amount_cents = 0;
  int32_t merchant_category = 0;
  int32_t country = 0;
};

struct CustomerFeatures {
  int64_t customer = 0;
  int64_t avg_amount_cents = 0;
  int32_t home_country = 0;
  double risk_score = 0;
};

struct Decision {
  int64_t customer = 0;
  bool fraudulent = false;
  int32_t fired_rule = -1;
};

constexpr int64_t kCustomers = 5'000;

CustomerFeatures FeaturesFor(int64_t customer) {
  uint64_t h = HashU64(static_cast<uint64_t>(customer));
  return CustomerFeatures{customer, 1'000 + static_cast<int64_t>(h % 50'000),
                          static_cast<int32_t>(h % 30),
                          static_cast<double>(h % 1000) / 1000.0};
}

// The "tens of business rules" — each inspects the enriched transaction.
Decision ApplyRules(const Transaction& t, const CustomerFeatures& f) {
  Decision d{t.customer, false, -1};
  struct Rule {
    bool (*fires)(const Transaction&, const CustomerFeatures&);
  };
  static const Rule kRules[] = {
      {[](const Transaction& t, const CustomerFeatures& f) {
        return t.amount_cents > 20 * f.avg_amount_cents;
      }},
      {[](const Transaction& t, const CustomerFeatures& f) {
        return t.country != f.home_country && t.amount_cents > 5 * f.avg_amount_cents;
      }},
      {[](const Transaction& t, const CustomerFeatures& f) {
        return f.risk_score > 0.97 && t.amount_cents > f.avg_amount_cents;
      }},
      {[](const Transaction& t, const CustomerFeatures&) {
        return t.merchant_category == 666 && t.amount_cents > 100'000;
      }},
  };
  for (size_t i = 0; i < std::size(kRules); ++i) {
    if (kRules[i].fires(t, f)) {
      d.fraudulent = true;
      d.fired_rule = static_cast<int32_t>(i);
      break;
    }
  }
  return d;
}

}  // namespace

int main() {
  pipeline::Pipeline p;

  // Batch build side: the customer feature table (in production this is an
  // IMDG IMap; here it is materialized as the hash-join's build input).
  std::vector<std::pair<CustomerFeatures, uint64_t>> features;
  features.reserve(kCustomers);
  for (int64_t c = 0; c < kCustomers; ++c) {
    features.push_back({FeaturesFor(c), HashU64(static_cast<uint64_t>(c))});
  }
  auto feature_table = p.ReadFromList<CustomerFeatures>("features", std::move(features));

  // Streaming probe side: 50k transactions/s for 2 seconds.
  core::GeneratorSourceP<Transaction>::Options options;
  options.events_per_second = 50'000;
  options.duration = 2 * kNanosPerSecond;
  options.watermark_interval = 10 * kNanosPerMilli;
  auto transactions = p.ReadFrom<Transaction>(
      "transactions",
      [](int64_t seq) {
        uint64_t h = HashU64(static_cast<uint64_t>(seq) * 31);
        Transaction t{static_cast<int64_t>(h % kCustomers),
                      static_cast<int64_t>(100 + (h >> 11) % 2'000'000),
                      static_cast<int32_t>((h >> 33) % 1000),
                      static_cast<int32_t>((h >> 43) % 30)};
        return std::make_pair(t, HashU64(static_cast<uint64_t>(t.customer)));
      },
      options);

  // Enrich + decide: join each transaction with its features, run the rules.
  auto decisions = transactions.HashJoin<CustomerFeatures, Decision>(
      "enrich-and-decide", feature_table,
      [](const CustomerFeatures& f) { return static_cast<uint64_t>(f.customer); },
      [](const Transaction& t) { return static_cast<uint64_t>(t.customer); },
      [](const Transaction& t, const std::vector<CustomerFeatures>& matches,
         std::vector<Decision>* out) {
        if (!matches.empty()) out->push_back(ApplyRules(t, matches.front()));
      });

  // Measure the decision latency (event occurrence -> decision emission).
  core::LatencyRecorder recorder;
  decisions.WriteToLatencySink("decision-latency", &recorder);

  auto dag = p.ToDag();
  if (!dag.ok()) {
    std::fprintf(stderr, "plan error: %s\n", dag.status().ToString().c_str());
    return 1;
  }
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  if (!job.ok() || !(*job)->Start().ok() || !(*job)->Join().ok()) {
    std::fprintf(stderr, "job failed\n");
    return 1;
  }

  Histogram h = recorder.Merged();
  std::printf("fraud decisions: %lld\n", static_cast<long long>(h.count()));
  std::printf("latency: %s\n", h.Summary(1e6, "ms").c_str());
  double sla_ms = 2.0;
  bool met = static_cast<double>(h.ValueAtQuantile(0.99)) / 1e6 <= sla_ms;
  std::printf("2ms SLA at p99: %s (p99 = %.3f ms)\n", met ? "MET" : "MISSED",
              static_cast<double>(h.ValueAtQuantile(0.99)) / 1e6);
  return 0;
}
