// View maintenance over a CDC stream (§6 "View Maintenance"): consume a
// change-data-capture stream of row updates, maintain a materialized
// aggregate view (revenue per product category), and publish every window's
// refreshed view into an IMDG IMap, where any application thread can query
// it — the pattern the paper's users built on Debezium streams.
#include <cstdio>

#include "core/job.h"
#include "common/logging.h"
#include "imdg/grid.h"
#include "imdg/imap.h"
#include "pipeline/pipeline.h"

namespace {

using namespace jet;  // NOLINT

struct RowChange {
  enum class Op : uint8_t { kInsert, kUpdate, kDelete };
  Op op = Op::kInsert;
  int64_t order_id = 0;
  int32_t category = 0;
  int64_t amount_cents = 0;
};

constexpr int32_t kCategories = 8;

// Sink processor that upserts each window result into the grid-backed view.
class ViewSinkP final : public core::Processor {
 public:
  explicit ViewSinkP(imdg::DataGrid* grid) : view_(grid, "revenue_by_category") {}

  void Process(int ordinal, core::Inbox* inbox) override {
    (void)ordinal;
    while (!inbox->Empty()) {
      const auto& r = inbox->Peek()->payload.As<core::WindowResult<int64_t>>();
      Status s = view_.Put(static_cast<int64_t>(r.key), r.value);
      if (!s.ok()) JET_LOG(kWarn) << "view update failed: " << s.ToString();
      inbox->RemoveFront();
    }
  }

 private:
  imdg::IMap<int64_t, int64_t> view_;
};

}  // namespace

int main() {
  // The IMDG holding the materialized view (2 members, replicated).
  imdg::DataGrid grid(/*backup_count=*/1);
  (void)grid.AddMember(0);
  (void)grid.AddMember(1);

  pipeline::Pipeline p;

  // CDC source: 20k change events/s for 2 seconds.
  core::GeneratorSourceP<RowChange>::Options options;
  options.events_per_second = 20'000;
  options.duration = 2 * kNanosPerSecond;
  options.watermark_interval = 20 * kNanosPerMilli;
  auto changes = p.ReadFrom<RowChange>(
      "cdc",
      [](int64_t seq) {
        uint64_t h = HashU64(static_cast<uint64_t>(seq));
        RowChange c;
        c.op = h % 10 == 0 ? RowChange::Op::kDelete
               : h % 3 == 0 ? RowChange::Op::kUpdate
                            : RowChange::Op::kInsert;
        c.order_id = static_cast<int64_t>(h % 100'000);
        c.category = static_cast<int32_t>((h >> 17) % kCategories);
        c.amount_cents = 100 + static_cast<int64_t>((h >> 23) % 50'000);
        return std::make_pair(c, HashU64(static_cast<uint64_t>(c.category)));
      },
      options);

  // Deletions remove revenue; inserts/updates add it (updates modeled as
  // deltas in this synthetic CDC stream).
  auto revenue =
      changes
          .Map<RowChange>("sign-deltas",
                          [](const RowChange& c) {
                            RowChange signed_change = c;
                            if (c.op == RowChange::Op::kDelete) {
                              signed_change.amount_cents = -c.amount_cents;
                            }
                            return signed_change;
                          })
          .GroupingKey([](const RowChange& c) { return static_cast<uint64_t>(c.category); })
          .Window(core::WindowDef::Tumbling(200 * kNanosPerMilli))
          .Aggregate<int64_t, int64_t>(
              "revenue", core::SummingAggregate<RowChange>(
                             [](const RowChange& c) { return c.amount_cents; }));

  // Publish each refreshed window into the grid view.
  revenue.WriteTo("view-sink", [&grid](const core::ProcessorMeta&) {
    return std::make_unique<ViewSinkP>(&grid);
  });

  auto dag = p.ToDag();
  if (!dag.ok()) {
    std::fprintf(stderr, "plan error: %s\n", dag.status().ToString().c_str());
    return 1;
  }
  core::JobParams params;
  params.dag = &*dag;
  params.cooperative_threads = 2;
  auto job = core::Job::Create(params);
  if (!job.ok() || !(*job)->Start().ok() || !(*job)->Join().ok()) {
    std::fprintf(stderr, "job failed\n");
    return 1;
  }

  // Query the materialized view like any application would.
  imdg::IMap<int64_t, int64_t> view(&grid, "revenue_by_category");
  std::printf("materialized view 'revenue_by_category' (last window per key):\n");
  for (int64_t category = 0; category < kCategories; ++category) {
    auto value = view.Get(category);
    if (value.ok() && value->has_value()) {
      std::printf("  category %lld : %8.2f (last-window revenue)\n",
                  static_cast<long long>(category),
                  static_cast<double>(**value) / 100.0);
    }
  }
  auto consistency = grid.CheckReplicaConsistency("revenue_by_category");
  std::printf("replica consistency: %s\n", consistency.ToString().c_str());
  return 0;
}
