// Failover demo: a windowed counting job with exactly-once guarantees runs
// on a 3-member in-process cluster; one member is killed mid-flight. The
// grid promotes the dead member's backup replicas (§4.2, Fig 6), the job
// restarts from its last committed snapshot on the survivors (§4.4), and
// the final results account for every event exactly once.
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "cluster/jet_cluster.h"
#include "core/processors_basic.h"
#include "core/processors_window.h"

namespace {

using namespace jet;  // NOLINT

struct Event {
  uint64_t key = 0;
};

}  // namespace

int main() {
  cluster::ClusterConfig config;
  config.initial_nodes = 3;
  config.threads_per_node = 1;
  cluster::JetCluster jet_cluster(config);
  std::printf("cluster up: %zu members, %d partitions, backup_count=%d\n",
              jet_cluster.AliveNodes().size(), jet_cluster.grid().partition_count(),
              config.backup_count);

  constexpr double kRate = 50'000;
  constexpr Nanos kDuration = 2 * kNanosPerSecond;
  const auto kExpected = static_cast<int64_t>(kRate * (kDuration / 1e9));

  // source -> accumulate -> [distributed, partitioned] combine -> collect
  core::Dag dag;
  auto collector = std::make_shared<core::SyncCollector<core::WindowResult<int64_t>>>();
  core::WindowDef window = core::WindowDef::Tumbling(50 * kNanosPerMilli);
  auto op = core::CountingAggregate<Event>();

  auto source = dag.AddVertex(
      "source",
      [&](const core::ProcessorMeta&) -> std::unique_ptr<core::Processor> {
        core::GeneratorSourceP<Event>::Options opt;
        opt.events_per_second = kRate;
        opt.duration = kDuration;
        opt.watermark_interval = 5 * kNanosPerMilli;
        return std::make_unique<core::GeneratorSourceP<Event>>(
            [](int64_t seq) {
              Event e{static_cast<uint64_t>(seq % 32)};
              return std::make_pair(e, HashU64(e.key));
            },
            opt);
      },
      1);
  auto accumulate = dag.AddVertex(
      "accumulate",
      [&](const core::ProcessorMeta&) {
        return std::make_unique<core::AccumulateByFrameP<Event, int64_t, int64_t>>(
            op, [](const Event& e) { return e.key; }, window);
      },
      1);
  auto combine = dag.AddVertex(
      "combine",
      [&](const core::ProcessorMeta&) {
        return std::make_unique<core::CombineFramesP<Event, int64_t, int64_t>>(op, window);
      },
      1);
  auto sink = dag.AddVertex(
      "sink",
      [&](const core::ProcessorMeta&) {
        return std::make_unique<core::CollectSinkP<core::WindowResult<int64_t>>>(collector);
      },
      1);
  dag.AddEdge(source, accumulate);
  auto& exchange = dag.AddEdge(accumulate, combine);
  exchange.routing = core::RoutingPolicy::kPartitioned;
  exchange.distributed = true;
  dag.AddEdge(combine, sink);

  core::JobConfig job_config;
  job_config.guarantee = core::ProcessingGuarantee::kExactlyOnce;
  job_config.snapshot_interval = 100 * kNanosPerMilli;
  auto job = jet_cluster.SubmitJob(&dag, job_config, /*job_id=*/1);
  if (!job.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", job.status().ToString().c_str());
    return 1;
  }
  std::printf("job submitted (exactly-once, snapshots every 100 ms)\n");

  // Wait for a couple of committed snapshots, then fail a member.
  for (int i = 0; i < 5000 && (*job)->last_committed_snapshot() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::printf("committed snapshots so far: %lld — killing member 1...\n",
              static_cast<long long>((*job)->last_committed_snapshot()));
  Status kill = jet_cluster.KillNode(1);
  std::printf("kill: %s; survivors: %zu; job attempts: %d\n", kill.ToString().c_str(),
              jet_cluster.AliveNodes().size(), (*job)->attempts_started());

  Status done = (*job)->Join();
  std::printf("job finished: %s (attempts=%d)\n", done.ToString().c_str(),
              (*job)->attempts_started());

  // Exactly-once check: distinct windows account for every event once.
  std::map<std::pair<uint64_t, Nanos>, int64_t> distinct;
  int64_t duplicates = 0;
  for (const auto& r : collector->Snapshot()) {
    auto [it, inserted] = distinct.insert({{r.key, r.window_end}, r.value});
    if (!inserted) ++duplicates;
  }
  int64_t total = 0;
  for (const auto& [kw, v] : distinct) total += v;
  std::printf("events expected=%lld counted=%lld duplicate emissions=%lld\n",
              static_cast<long long>(kExpected), static_cast<long long>(total),
              static_cast<long long>(duplicates));
  std::printf("exactly-once across failure: %s\n",
              total == kExpected ? "VERIFIED" : "VIOLATED");
  return total == kExpected ? 0 : 1;
}
