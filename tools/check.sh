#!/usr/bin/env bash
# Concurrency-correctness driver: lint + build + test every preset.
#
#   tools/check.sh                 # lint, then all presets (relwithdebinfo,
#                                  # asan-ubsan, tsan): configure+build+ctest
#   tools/check.sh --preset tsan   # one preset only
#   tools/check.sh --lint-only     # just the static checks
#   tools/check.sh --demo          # also run the deliberate two-producer
#                                  # misuse demos (expected to fail loudly:
#                                  # guard abort under asan-ubsan, TSan
#                                  # report under tsan)
#
# Sanitizer findings are fatal; jet-verify's lock-in-spin rule and
# clang-tidy (skipped when not installed) are advisory.

set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=(relwithdebinfo asan-ubsan tsan)
RUN_DEMO=0
LINT_ONLY=0
JOBS="${JOBS:-$(nproc)}"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset) PRESETS=("$2"); shift 2 ;;
    --demo) RUN_DEMO=1; shift ;;
    --lint-only) LINT_ONLY=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

echo "== lint: jet-verify (cooperative-blocking + concurrency contracts) =="
python3 tools/jet_verify.py --strict --baseline tools/jet_verify_baseline.json

if command -v run-clang-tidy >/dev/null 2>&1 && command -v clang-tidy >/dev/null 2>&1; then
  echo "== lint: clang-tidy (advisory) =="
  cmake --preset relwithdebinfo >/dev/null  # presets export compile_commands.json
  run-clang-tidy -quiet -p build-relwithdebinfo "src/.*" || \
    echo "clang-tidy reported findings (advisory; not failing the check)"
else
  echo "== lint: clang-tidy not installed, skipping =="
fi

[[ "$LINT_ONLY" == 1 ]] && exit 0

for preset in "${PRESETS[@]}"; do
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --preset "$preset" -j "$JOBS"
done

if [[ "$RUN_DEMO" == 1 ]]; then
  # The misuse demos prove the toolchain catches a second concurrent
  # producer on an SpscQueue both ways (ISSUE 1 acceptance): the
  # ThreadOwnershipGuard aborts when JETSIM_DEBUG_CHECKS is on, and TSan
  # reports the underlying race when the guard is compiled out.
  if [[ -x build-asan-ubsan/tests/race_stress_test ]]; then
    echo "== demo: ownership guard catches second producer (asan-ubsan) =="
    build-asan-ubsan/tests/race_stress_test \
      --gtest_filter='SpscQueueOwnershipDeathTest.*'
  fi
  if [[ -x build-tsan/tests/race_stress_test ]]; then
    echo "== demo: TSan reports the two-producer race (expected to FAIL) =="
    if TSAN_OPTIONS=halt_on_error=1 build-tsan/tests/race_stress_test \
        --gtest_also_run_disabled_tests \
        --gtest_filter='RaceDemo.DISABLED_TwoProducersRaceUnderTsan'; then
      echo "ERROR: TSan did not report the deliberate race" >&2
      exit 1
    else
      echo "ok: TSan reported the deliberate race, as intended"
    fi
  fi
fi

echo "== all checks passed =="
