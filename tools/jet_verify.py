#!/usr/bin/env python3
"""jet-verify: concurrency-contract checker for jetsim.

Complements the Clang Thread Safety annotations (src/common/
thread_annotations.h): clang's -Wthread-safety proves *lock discipline*
(guarded members, acquisition order on annotated edges); jet-verify proves
the *cooperative contract* of §3.2 — code reachable from a cooperative
tasklet's hot path must never block — plus a handful of lexical rules the
compiler cannot see.

Rules
-----
  blocking-in-call   An unbounded wait (condition-variable wait, sleep,
                     thread join, JET_BLOCKING function) is reachable from a
                     cooperative root (an override of Tasklet::Call() or a
                     Processor hot-path virtual). Blocking a cooperative
                     worker stalls every tasklet sharing the thread — the
                     exact latency inversion Fig. 4 exists to avoid.
  lock-in-call       A mutex acquisition is reachable from a cooperative
                     root. A *bounded* critical section is tolerable at low
                     duty cycle; audit it and suppress inline, or mark the
                     callee JET_COOPERATIVE to declare the whole function an
                     audited boundary.
  single-writer      A relaxed atomic write. Legitimate only for cells with
                     one owning writer whose readers tolerate staleness
                     (statistics, debug ids); each site carries an inline
                     suppression stating why, replacing the old out-of-band
                     whitelist in lint_concurrency.py.
  raw-mutex          A raw std::mutex / std::shared_mutex /
                     std::condition_variable / std lock guard outside
                     thread_annotations.h. Raw primitives are invisible to
                     both enforcement layers; use the jet:: wrappers.
  volatile           `volatile` is never a substitute for std::atomic.
  lock-in-spin       (advisory) A mutex acquisition lexically inside a
                     busy-wait loop.
  owned-access       A mutex acquisition after an OwnedPartitionHandle
                     is acquired in the same function. Owned-partition
                     access is the zero-lock fast path of the
                     single-writer ownership model (DESIGN.md §
                     partition ownership); taking a lock inside that
                     scope reintroduces the contention the handle
                     exists to remove and risks deadlock against the
                     grid's quiesce protocol. The src/imdg
                     implementation itself is exempt (the handle's
                     internals coordinate with layout changes).

Suppressions
------------
An inline comment

    // jet-verify: allow(<rule>[, <rule>...]) — <reason>

on a code line covers that line; on a standalone comment line it covers the
contiguous run of following non-blank lines (so one comment can cover a
short audited block). A suppression with an unknown rule, with no reason,
or that suppresses nothing (stale) is itself an error — suppressions cannot
rot silently.

Backends
--------
  text   (default) pure-Python lexical backend: per-line rules plus a
         name-based over-approximating call graph for the reachability
         rules. Runs anywhere, no dependencies.
  clang  libclang (clang.cindex) AST backend over compile_commands.json:
         precise call resolution and annotation reads. Selected with
         --backend=clang or auto-picked when libclang is importable and a
         compilation database is present.

Usage
-----
  python3 tools/jet_verify.py [--strict] [--backend auto|text|clang]
                              [--compile-commands PATH]
                              [--baseline tools/jet_verify_baseline.json]
                              [--expect RULE | --expect-clean] [paths...]

Default paths: src/. --strict exits non-zero on errors (CI and
tools/check.sh run strict). --expect RULE inverts the exit logic for
fixture tests: success means at least one finding of RULE fired in the
given paths; --expect-clean means no findings at all.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = {
    "blocking-in-call",
    "lock-in-call",
    "single-writer",
    "raw-mutex",
    "volatile",
    "lock-in-spin",
    "owned-access",
}

# Overrides of these virtuals run on cooperative workers inside the tasklet
# round (§3.2). Init is deliberately absent: it runs once per execution and
# is allowed to block.
ROOT_NAMES = {
    "Call",
    "Process",
    "TryProcess",
    "TryProcessWatermark",
    "CompleteEdge",
    "Complete",
    "SaveToSnapshot",
    "RestoreFromSnapshot",
    "FinishSnapshotRestore",
    "OnSnapshotCompleted",
}

VOLATILE_RE = re.compile(r"\bvolatile\b")
RELAXED_WRITE_RE = re.compile(
    r"(\.|->)(store|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|exchange)"
    r"\s*\([^;]*memory_order_relaxed"
)
RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"(?:_any)?|scoped_lock|lock_guard|unique_lock|shared_lock)\b"
)
SPIN_LOOP_RE = re.compile(
    r"\b(while|for)\s*\([^)]*(\.load\s*\(|compare_exchange|\.test\s*\()"
)
LOCK_RE = re.compile(
    r"\bjet::(MutexLock|UniqueMutexLock|ReaderLock|WriterLock)\b|\.Lock\s*\(\s*\)"
    r"|\.lock\s*\(\s*\)"
)
BLOCKING_RE = re.compile(
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|\.join\s*\(\s*\)"
    r"|\.wait\s*\(|\.wait_for\s*\(|\.wait_until\s*\("
    r"|\.Wait\s*\(|\.WaitFor\s*\("
)
OWNED_ACQUIRE_RE = re.compile(
    r"\bAcquireOwnedPartition\s*\(|\bOwnedPartitionHandle\b"
)
SUPPRESS_RE = re.compile(
    r"jet-verify:\s*allow\(([^)]*)\)\s*(?:—|--|-)?\s*(.*)"
)
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CALL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "decltype",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast", "catch",
    "defined", "assert", "new", "delete", "throw", "noexcept", "alignas",
    "static_assert", "typeid", "co_await", "co_return", "co_yield", "int",
    "int32_t", "int64_t", "uint64_t", "uint32_t", "size_t", "bool", "double",
    "float", "char", "void", "auto", "explicit",
}

# Matches a function definition header. The params group excludes ';' so
# declarations do not match; the trailer tolerates cv-qualifiers, override,
# noexcept and JET_* annotation macros before the body's '{' (or a
# constructor's ':' initializer list).
FUNC_RE = re.compile(
    r"(?:^|\n)[ \t]*(?!#)(?:[\w:<>,*&~\[\]]+[ \t\n]+)+"
    r"(?P<qual>(?:\w+::)*)(?P<name>~?[A-Za-z_]\w*)[ \t]*"
    r"\((?P<params>[^;{}()]*(?:\([^;{}()]*\)[^;{}()]*)*)\)"
    r"(?P<trail>(?:[ \t\n]|const\b|final\b|override\b|noexcept\b"
    r"|JET_\w+(?:\([^()]*\))?|->[ \t]*[\w:<>&*]+)*)"
    r"(?P<open>\{|:)",
    re.MULTILINE,
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                out.append("\n")
                if mode == "line":
                    mode = None
                i += 1
                continue
            if mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            if mode in ("str", "chr") and c == "\\":
                out.append("  ")
                i += 2
                continue
            if (mode == "str" and c == '"') or (mode == "chr" and c == "'"):
                mode = None
            out.append(" ")
        i += 1
    return "".join(out)


@dataclass
class Suppression:
    file: str
    line: int           # 1-based line of the comment
    rules: list[str]
    reason: str
    covered: set[int]   # 1-based line numbers this suppression covers
    used: bool = False
    bad: str | None = None  # hygiene error, if any


@dataclass
class FuncDef:
    name: str
    qual: str           # e.g. "Network::" (may be empty)
    file: str
    line: int           # 1-based line of the signature
    body_start: int     # 1-based first body line
    body_end: int       # 1-based last body line (inclusive)
    is_override: bool
    cooperative: bool
    blocking: bool
    # (line, kind, text) direct facts; kind in {lock, block}
    facts: list = field(default_factory=list)
    # (line, callee_name) call sites
    calls: list = field(default_factory=list)
    # transitive summaries (fixed point)
    locks: tuple | None = None   # witness (file, line, desc) or None
    blocks: tuple | None = None


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    advisory: bool = False

    def render(self) -> str:
        sev = "warning" if self.advisory else "error"
        return f"{sev}: {self.file}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> str:
        return f"{self.rule}:{self.file}:{self.line}"


def parse_suppressions(raw_lines: list[str], rel: str) -> list[Suppression]:
    """Extracts jet-verify suppression comments and their coverage."""
    sups: list[Suppression] = []
    n = len(raw_lines)
    for idx, line in enumerate(raw_lines):
        m = SUPPRESS_RE.search(line)
        if m is None:
            continue
        comment_pos = line.find("//")
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        reason = m.group(2).strip()
        sup = Suppression(rel, idx + 1, rules, reason, set())
        for r in rules:
            if r not in RULES:
                sup.bad = f"unknown rule '{r}'"
        if not rules:
            sup.bad = "empty rule list"
        code_before = comment_pos > 0 and line[:comment_pos].strip() != ""
        if code_before:
            sup.covered.add(idx + 1)
        else:
            # A standalone comment (plus contiguous continuation comments)
            # covers the following run of non-blank lines. If the reason is
            # empty on the marker line, a continuation comment may carry it.
            j = idx + 1
            while j < n and raw_lines[j].strip().startswith("//") and \
                    "jet-verify:" not in raw_lines[j]:
                if not reason:
                    reason = raw_lines[j].strip().lstrip("/").strip()
                j += 1
            while j < n and raw_lines[j].strip() != "":
                sup.covered.add(j + 1)
                j += 1
        if not reason:
            sup.bad = sup.bad or "missing reason (write: allow(rule) — why)"
        sup.reason = reason
        sups.append(sup)
    return sups


class SuppressionIndex:
    def __init__(self) -> None:
        self.by_file: dict[str, list[Suppression]] = {}

    def add_file(self, rel: str, sups: list[Suppression]) -> None:
        self.by_file[rel] = sups

    def match(self, rel: str, line: int, rule: str) -> Suppression | None:
        for sup in self.by_file.get(rel, []):
            if sup.bad is None and rule in sup.rules and line in sup.covered:
                return sup
        return None

    def hygiene_findings(self) -> list[Finding]:
        out = []
        for rel, sups in sorted(self.by_file.items()):
            for sup in sups:
                if sup.bad is not None:
                    out.append(Finding(
                        "suppression", rel, sup.line,
                        f"malformed suppression: {sup.bad}"))
                elif not sup.used:
                    out.append(Finding(
                        "suppression", rel, sup.line,
                        "stale suppression: it no longer matches any "
                        "finding; delete it or fix the rule list"))
        return out


def find_spin_scopes(lines: list[str]) -> list[tuple[int, int]]:
    """Returns (start, end) 0-based line ranges of busy-wait loop bodies."""
    scopes = []
    for idx, line in enumerate(lines):
        if not SPIN_LOOP_RE.search(line):
            continue
        depth = 0
        started = False
        for j in range(idx, min(idx + 80, len(lines))):
            depth += lines[j].count("{") - lines[j].count("}")
            if "{" in lines[j]:
                started = True
            if started and depth <= 0:
                scopes.append((idx, j))
                break
    return scopes


# ---------------------------------------------------------------------------
# Text backend
# ---------------------------------------------------------------------------

class TextBackend:
    """Lexical backend: per-line rules + name-based reachability analysis.

    Call resolution is by simple name, which over-approximates virtual
    dispatch — deliberately: a cooperative root must be safe under *every*
    possible callee, so matching all same-named definitions is the sound
    direction for this check. Only CamelCase callees are resolved: lowercase
    names (size, count, stats_...) collide with STL container methods on
    every line that touches a vector, and the codebase's method style is
    CamelCase; lowercase accessors are covered by the per-line rules and
    the clang backend's precise resolution.
    """

    def __init__(self, files: list[Path], repo_root: Path) -> None:
        self.repo_root = repo_root
        self.files = files
        self.sups = SuppressionIndex()
        self.funcs: list[FuncDef] = []
        self.by_name: dict[str, list[FuncDef]] = {}
        self.findings: list[Finding] = []

    def rel(self, path: Path) -> str:
        try:
            return path.relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.as_posix()

    def run(self) -> list[Finding]:
        parsed = []
        for path in self.files:
            raw = path.read_text(errors="replace")
            stripped = strip_comments_and_strings(raw)
            rel = self.rel(path)
            self.sups.add_file(rel, parse_suppressions(raw.split("\n"), rel))
            parsed.append((path, rel, raw, stripped))

        for path, rel, raw, stripped in parsed:
            self.scan_lines(rel, stripped)
            self.extract_functions(rel, stripped)

        self.index_functions()
        self.solve_reachability()
        self.report_roots()
        self.findings.extend(self.sups.hygiene_findings())
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return self.findings

    # -- per-line rules ----------------------------------------------------

    def scan_lines(self, rel: str, stripped: str) -> None:
        lines = stripped.split("\n")
        is_vocab = rel.endswith("common/thread_annotations.h")
        for idx, line in enumerate(lines, start=1):
            if VOLATILE_RE.search(line):
                self.emit(rel, idx, "volatile",
                          "`volatile` is banned; use std::atomic with an "
                          "explicit memory order")
            # Two-line window: a relaxed RMW often wraps its memory-order
            # argument onto the next line. Attribute to the first line;
            # skip when the next line alone matches (it gets its own turn).
            window = line if idx >= len(lines) else line + " " + lines[idx]
            if RELAXED_WRITE_RE.search(window) and not (
                    idx < len(lines) and RELAXED_WRITE_RE.search(lines[idx])):
                self.emit(rel, idx, "single-writer",
                          "relaxed atomic write: only correct for a cell "
                          "with one owning writer whose readers tolerate "
                          "staleness; audit and suppress inline")
            if not is_vocab and RAW_MUTEX_RE.search(line):
                self.emit(rel, idx, "raw-mutex",
                          "raw std synchronization primitive: invisible to "
                          "-Wthread-safety and jet-verify; use the jet:: "
                          "wrappers from common/thread_annotations.h")
        for start, end in find_spin_scopes(lines):
            # A loop that sleeps or waits each round is a poll, not a spin.
            if any(BLOCKING_RE.search(lines[j]) for j in range(start, end + 1)):
                continue
            for j in range(start + 1, end + 1):
                if LOCK_RE.search(lines[j]) or RAW_MUTEX_RE.search(lines[j]):
                    self.emit(rel, j + 1, "lock-in-spin",
                              f"mutex acquisition inside a busy-wait loop "
                              f"(started line {start + 1}); blocking under "
                              f"a spin defeats the cooperative scheduler's "
                              f"latency model", advisory=True)
                    break

    def emit(self, rel: str, line: int, rule: str, msg: str,
             advisory: bool = False) -> None:
        sup = self.sups.match(rel, line, rule)
        if sup is not None:
            sup.used = True
            return
        self.findings.append(Finding(rule, rel, line, msg, advisory))

    # -- function extraction -----------------------------------------------

    def extract_functions(self, rel: str, stripped: str) -> None:
        for m in FUNC_RE.finditer(stripped):
            name = m.group("name")
            if name in CALL_KEYWORDS or name.startswith("~"):
                continue
            open_pos = m.end() - 1
            if m.group("open") == ":":
                # Constructor initializer list: advance to the body's '{'
                # at paren depth 0.
                depth = 0
                pos = open_pos
                n = len(stripped)
                while pos < n:
                    c = stripped[pos]
                    if c == "(":
                        depth += 1
                    elif c == ")":
                        depth -= 1
                    elif c == "{" and depth == 0:
                        break
                    elif c == ";":
                        pos = -1
                        break
                    pos += 1
                if pos < 0 or pos >= n:
                    continue
                open_pos = pos
            body_end = self.match_brace(stripped, open_pos)
            if body_end < 0:
                continue
            sig_line = stripped.count("\n", 0, m.start(0)) + 2 \
                if stripped[m.start(0):m.start(0) + 1] == "\n" \
                else stripped.count("\n", 0, m.start(0)) + 1
            body_start = stripped.count("\n", 0, open_pos) + 1
            body_end_line = stripped.count("\n", 0, body_end) + 1
            trail = m.group("trail") or ""
            header = m.group(0)
            fn = FuncDef(
                name=name,
                qual=m.group("qual") or "",
                file=rel,
                line=sig_line,
                body_start=body_start,
                body_end=body_end_line,
                is_override="override" in trail,
                cooperative="JET_COOPERATIVE" in header,
                blocking="JET_BLOCKING" in header,
            )
            body = stripped[open_pos:body_end + 1]
            base = body_start
            # owned-access: first line of this body where an
            # OwnedPartitionHandle becomes live; locks after it are errors.
            # The handle implementation itself (src/imdg) coordinates with
            # the grid's quiesce protocol and is exempt.
            owned_line = None
            owned_exempt = rel.startswith("src/imdg/")
            for off, line in enumerate(body.split("\n")):
                ln = base + off
                if not owned_exempt:
                    if owned_line is not None and (LOCK_RE.search(line) or
                                                   RAW_MUTEX_RE.search(line)):
                        self.emit(rel, ln, "owned-access",
                                  f"mutex acquisition inside an owned-"
                                  f"partition scope (handle acquired line "
                                  f"{owned_line}): owned access is the "
                                  f"zero-lock single-writer fast path; a "
                                  f"lock here reintroduces the contention "
                                  f"it removes and can deadlock against "
                                  f"the grid's quiesce protocol")
                    if owned_line is None and OWNED_ACQUIRE_RE.search(line):
                        owned_line = ln
                if LOCK_RE.search(line):
                    fn.facts.append((ln, "lock", line.strip()))
                if BLOCKING_RE.search(line):
                    fn.facts.append((ln, "block", line.strip()))
                for cm in CALL_RE.finditer(line):
                    callee = cm.group(1)
                    if (callee not in CALL_KEYWORDS and callee != name
                            and callee[0].isupper()):
                        fn.calls.append((ln, callee))
            self.funcs.append(fn)

    @staticmethod
    def match_brace(text: str, open_pos: int) -> int:
        depth = 0
        for i in range(open_pos, len(text)):
            c = text[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return i
        return -1

    def index_functions(self) -> None:
        for fn in self.funcs:
            self.by_name.setdefault(fn.name, []).append(fn)

    # -- reachability ------------------------------------------------------

    def solve_reachability(self) -> None:
        """Fixed point over (locks, blocks) summaries, edge-aware for
        suppressions and JET_COOPERATIVE boundaries."""
        for fn in self.funcs:
            fn.locks = None
            fn.blocks = None
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for fn in self.funcs:
                if fn.cooperative:
                    continue  # audited boundary: never propagates upward
                new_locks = fn.locks
                new_blocks = fn.blocks
                for ln, kind, text in fn.facts:
                    rule = "lock-in-call" if kind == "lock" else "blocking-in-call"
                    sup = self.sups.match(fn.file, ln, rule)
                    if sup is not None:
                        sup.used = True
                        continue
                    wit = (fn.file, ln, text)
                    if kind == "lock" and new_locks is None:
                        new_locks = wit
                    if kind == "block" and new_blocks is None:
                        new_blocks = wit
                for ln, callee in fn.calls:
                    defs = self.by_name.get(callee)
                    if not defs:
                        continue
                    for cd in defs:
                        if cd.file.endswith("common/thread_annotations.h"):
                            continue  # wrapper internals
                        if cd.cooperative:
                            continue
                        if cd.blocking:
                            sup = self.sups.match(fn.file, ln,
                                                  "blocking-in-call")
                            if sup is not None:
                                sup.used = True
                                continue
                            if new_blocks is None:
                                new_blocks = (fn.file, ln,
                                              f"call to JET_BLOCKING "
                                              f"{callee}()")
                            continue
                        if cd.locks is not None and new_locks is None:
                            sup = self.sups.match(fn.file, ln, "lock-in-call")
                            if sup is not None:
                                sup.used = True
                            else:
                                new_locks = cd.locks
                        if cd.blocks is not None and new_blocks is None:
                            sup = self.sups.match(fn.file, ln,
                                                  "blocking-in-call")
                            if sup is not None:
                                sup.used = True
                            else:
                                new_blocks = cd.blocks
                if new_locks != fn.locks or new_blocks != fn.blocks:
                    fn.locks = new_locks
                    fn.blocks = new_blocks
                    changed = True

    def report_roots(self) -> None:
        for fn in self.funcs:
            if fn.name not in ROOT_NAMES or not fn.is_override:
                continue
            if fn.cooperative:
                continue
            if fn.blocks is not None:
                wf, wl, wtext = fn.blocks
                self.emit(fn.file, fn.line, "blocking-in-call",
                          f"cooperative root {fn.qual}{fn.name}() reaches a "
                          f"blocking operation at {wf}:{wl} ({wtext}); a "
                          f"blocked worker stalls every tasklet sharing the "
                          f"thread (§3.2)")
            if fn.locks is not None:
                wf, wl, wtext = fn.locks
                self.emit(fn.file, fn.line, "lock-in-call",
                          f"cooperative root {fn.qual}{fn.name}() reaches a "
                          f"mutex acquisition at {wf}:{wl} ({wtext}); audit "
                          f"the critical section and suppress inline or "
                          f"mark the callee JET_COOPERATIVE")


# ---------------------------------------------------------------------------
# Clang backend
# ---------------------------------------------------------------------------

class ClangBackend:
    """AST backend over compile_commands.json via clang.cindex.

    Runs the same per-line lexical rules as the text backend (they are
    token-level properties), but replaces the name-based call graph with
    real cursor resolution: CALL_EXPR referenced declarations, AnnotateAttr
    reads for JET_BLOCKING / JET_COOPERATIVE, and override detection via
    CXX_OVERRIDE_ATTR / overridden cursors.
    """

    BLOCKING_DECLS = (
        "sleep_for", "sleep_until", "wait", "wait_for", "wait_until",
        "join", "Wait", "WaitFor",
    )

    def __init__(self, files, repo_root, compile_commands):
        import clang.cindex as cindex  # noqa: F401  (availability probed)
        self.cindex = cindex
        self.files = files
        self.repo_root = repo_root
        self.compile_commands = compile_commands
        self.text = TextBackend(files, repo_root)

    def run(self) -> list[Finding]:
        cindex = self.cindex
        findings = self.text.run()  # lexical rules + fallback graph
        try:
            db = cindex.CompilationDatabase.fromDirectory(
                str(self.compile_commands.parent))
        except cindex.CompilationDatabaseError:
            print("jet-verify: warning: unreadable compilation database; "
                  "clang backend ran lexical rules only", file=sys.stderr)
            return findings
        index = cindex.Index.create()
        seen: set[str] = set()
        extra: list[Finding] = []
        for path in self.files:
            if path.suffix != ".cc":
                continue
            cmds = db.getCompileCommands(str(path))
            if not cmds:
                continue
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a not in ("-c", "-o", str(path))]
            try:
                tu = index.parse(str(path), args=args)
            except cindex.TranslationUnitLoadError:
                continue
            self.walk(tu.cursor, extra, seen)
        for f in extra:
            sup = self.text.sups.match(f.file, f.line, f.rule)
            if sup is not None:
                sup.used = True
                continue
            if f.key() not in {x.key() for x in findings}:
                findings.append(f)
        findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return findings

    def annotations(self, cursor) -> set[str]:
        return {c.displayname for c in cursor.get_children()
                if c.kind == self.cindex.CursorKind.ANNOTATE_ATTR}

    def is_root(self, cursor) -> bool:
        kinds = (self.cindex.CursorKind.CXX_METHOD,)
        if cursor.kind not in kinds:
            return False
        if cursor.spelling not in ROOT_NAMES:
            return False
        try:
            return bool(cursor.get_overridden_cursors())
        except Exception:
            return False

    def walk(self, cursor, out: list[Finding], seen: set[str]) -> None:
        for child in cursor.walk_preorder():
            if not self.is_root(child) or not child.is_definition():
                continue
            loc = child.location
            if loc.file is None:
                continue
            rel = Path(loc.file.name)
            try:
                rel = rel.resolve().relative_to(self.repo_root).as_posix()
            except ValueError:
                continue
            key = f"{rel}:{loc.line}:{child.spelling}"
            if key in seen:
                continue
            seen.add(key)
            witness = self.find_blocking(child, depth=0, visited=set())
            if witness is not None:
                out.append(Finding(
                    "blocking-in-call", rel, loc.line,
                    f"cooperative root {child.spelling}() reaches a "
                    f"blocking operation: {witness}"))

    def find_blocking(self, cursor, depth: int, visited: set) -> str | None:
        if depth > 12:
            return None
        for node in cursor.walk_preorder():
            if node.kind != self.cindex.CursorKind.CALL_EXPR:
                continue
            ref = node.referenced
            if ref is None:
                continue
            anns = self.annotations(ref)
            if "jet::cooperative" in anns:
                continue
            if "jet::blocking" in anns or ref.spelling in self.BLOCKING_DECLS:
                loc = node.location
                fname = loc.file.name if loc.file else "?"
                return f"{ref.spelling}() at {fname}:{loc.line}"
            usr = ref.get_usr()
            if ref.is_definition() and usr not in visited:
                visited.add(usr)
                w = self.find_blocking(ref, depth + 1, visited)
                if w is not None:
                    return w
        return None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(paths: list[str] | None, repo_root: Path) -> list[Path]:
    roots = [Path(p) for p in paths] if paths else [repo_root / "src"]
    files: list[Path] = []
    for root in roots:
        root = root if root.is_absolute() else repo_root / root
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cc")))
    return files


def pick_backend(name: str, files: list[Path], repo_root: Path,
                 compile_commands: Path | None):
    if name in ("clang", "auto"):
        cc = compile_commands
        if cc is None:
            for cand in (repo_root / "build" / "compile_commands.json",
                         repo_root / "compile_commands.json"):
                if cand.exists():
                    cc = cand
                    break
        try:
            import clang.cindex  # noqa: F401
            have_clang = True
        except ImportError:
            have_clang = False
        if have_clang and cc is not None:
            return ClangBackend(files, repo_root, cc)
        if name == "clang":
            print("jet-verify: error: --backend=clang requires the clang "
                  "python bindings and a compile_commands.json",
                  file=sys.stderr)
            sys.exit(2)
    return TextBackend(files, repo_root)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when errors exist")
    parser.add_argument("--backend", choices=("auto", "text", "clang"),
                        default="auto")
    parser.add_argument("--compile-commands", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None,
                        help="JSON baseline of accepted finding keys; new "
                        "findings beyond it fail, stale entries fail too")
    parser.add_argument("--expect", default=None, metavar="RULE",
                        help="fixture mode: succeed iff >=1 finding of RULE")
    parser.add_argument("--expect-clean", action="store_true",
                        help="fixture mode: succeed iff no findings at all")
    parser.add_argument("paths", nargs="*", default=None)
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    files = collect_files(args.paths, repo_root)
    backend = pick_backend(args.backend, files, repo_root,
                           args.compile_commands)
    findings = backend.run()

    errors = [f for f in findings if not f.advisory]
    warnings = [f for f in findings if f.advisory]

    if args.expect is not None:
        hits = [f for f in findings if f.rule == args.expect]
        for f in findings:
            print(f.render())
        if hits:
            print(f"jet-verify: fixture OK: rule '{args.expect}' fired "
                  f"{len(hits)}x")
            return 0
        print(f"jet-verify: fixture FAILED: expected rule '{args.expect}' "
              f"to fire, it did not")
        return 1

    if args.expect_clean:
        for f in findings:
            print(f.render())
        if errors:
            print(f"jet-verify: fixture FAILED: expected a clean run, got "
                  f"{len(errors)} errors")
            return 1
        print("jet-verify: fixture OK: clean")
        return 0

    baseline_keys: set[str] = set()
    if args.baseline is not None and args.baseline.exists():
        baseline_keys = set(json.loads(args.baseline.read_text())
                            .get("accepted", []))
    fresh = [f for f in errors if f.key() not in baseline_keys]
    stale_baseline = baseline_keys - {f.key() for f in errors}

    for f in fresh:
        print(f.render())
    for f in warnings:
        print(f.render())
    for key in sorted(stale_baseline):
        print(f"error: baseline entry '{key}' no longer matches any "
              f"finding; remove it from {args.baseline}")
    backend_name = type(backend).__name__.replace("Backend", "").lower()
    print(f"jet-verify[{backend_name}]: {len(files)} files, "
          f"{len(fresh)} errors, {len(warnings)} warnings"
          + (f", {len(baseline_keys)} baselined" if baseline_keys else ""))
    if args.strict and (fresh or stale_baseline):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
