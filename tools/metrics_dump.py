#!/usr/bin/env python3
"""Render a jet::obs metrics dump as a per-tasklet table.

Reads a diagnostics document from a file or stdin — either the JSON
produced by ``JetCluster::DiagnosticsDump()`` / ``Job::DiagnosticsJson()``
or the Prometheus text exposition — and prints one row per tasklet
instance: items processed, busy fraction, call-time p50/p99.99, queue
depths, and over-budget call counts. This is the command-line stand-in
for the Management Center's per-vertex view (paper §2).

Usage:
    obs_demo | tools/metrics_dump.py
    tools/metrics_dump.py dump.json
    tools/metrics_dump.py --prometheus dump.prom

Only the Python standard library is used.
"""

import argparse
import json
import re
import sys
from collections import defaultdict

# ---------------------------------------------------------------------------
# Input parsing
# ---------------------------------------------------------------------------

_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_PROM_LABEL = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:\\.|[^"\\])*)"')


def _dotted(prom_name):
    """Undoes the exporter's sanitization enough for table matching:
    "jet_tasklet_call_nanos" -> "tasklet.call_nanos"."""
    name = re.sub(r"^jet_", "", prom_name)
    return re.sub(r"^(tasklet|exchange|job|imdg|net|cluster)_", r"\1.", name)


def parse_prometheus(text):
    """Returns a list of metric dicts shaped like the JSON exporter's."""
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _PROM_LINE.match(line)
        if not m:
            continue
        labels = {
            lm.group("k"): lm.group("v").replace('\\"', '"').replace("\\\\", "\\")
            for lm in _PROM_LABEL.finditer(m.group("labels") or "")
        }
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        samples.append((m.group("name"), labels, value))

    # Histograms render as a summary family: `x{quantile=...}` plus x_sum,
    # x_count, x_min, x_max. Fold those series back into one metric — but
    # only for bases that actually emitted quantile samples, so plain
    # counters whose names happen to end in "_count" (imdg_partition_count)
    # are left alone.
    histogram_bases = {name for name, labels, _ in samples if "quantile" in labels}
    metrics = {}

    def entry(name, tags):
        key = (name, tuple(sorted(tags.items())))
        if key not in metrics:
            metrics[key] = {"name": _dotted(name), "tags": tags, "kind": "gauge"}
        return metrics[key]

    for name, labels, value in samples:
        quantile = labels.pop("quantile", None)
        if quantile is not None:
            e = entry(name, labels)
            e["kind"] = "histogram"
            e.setdefault("quantiles", {})[quantile] = value
            continue
        base, suffix = name, None
        for s in ("_sum", "_count", "_min", "_max"):
            if name.endswith(s) and name[: -len(s)] in histogram_bases:
                base, suffix = name[: -len(s)], s[1:]
                break
        e = entry(base, labels)
        if suffix is not None:
            e["kind"] = "histogram"
            e[suffix] = value
        else:
            e["value"] = value
    return list(metrics.values())


def load_metrics(text):
    text = text.strip()
    if not text:
        raise SystemExit("metrics_dump.py: empty input")
    if text[0] in "{[":
        doc = json.loads(text)
        return doc["metrics"] if isinstance(doc, dict) else doc
    return parse_prometheus(text)


# ---------------------------------------------------------------------------
# Table building
# ---------------------------------------------------------------------------

def quantile(metric, q):
    qs = metric.get("quantiles") or {}
    for key, value in qs.items():
        if abs(float(key) - q) < 1e-12:
            return value
    return None


def fmt_nanos(n):
    if n is None:
        return "-"
    n = float(n)
    if n >= 1e9:
        return f"{n / 1e9:.2f}s"
    if n >= 1e6:
        return f"{n / 1e6:.2f}ms"
    if n >= 1e3:
        return f"{n / 1e3:.1f}us"
    return f"{n:.0f}ns"


def build_rows(metrics):
    """Groups tasklet.* metrics by (member, tasklet) into table rows."""
    rows = defaultdict(dict)
    for m in metrics:
        name = m.get("name", "")
        if not name.startswith("tasklet."):
            continue
        tags = m.get("tags") or {}
        tasklet = tags.get("tasklet")
        if not tasklet:
            continue
        member = tags.get("member", "-")
        row = rows[(str(member), tasklet)]
        field = name[len("tasklet."):]
        if field == "call_nanos":
            # Profiler series are per {tasklet, worker}: merge conservatively
            # (max of quantiles, sum of counts).
            row["p50"] = max(row.get("p50") or 0, quantile(m, 0.5) or 0) or None
            row["p9999"] = max(row.get("p9999") or 0, quantile(m, 0.9999) or 0) or None
            row["max_call"] = max(row.get("max_call") or 0, m.get("max") or 0) or None
        else:
            row[field] = row.get(field, 0) + (m.get("value") or 0)
    return rows


def busy_fraction(row):
    calls = row.get("calls", 0)
    if not calls:
        return None
    return (calls - row.get("idle_calls", 0)) / calls


def render_table(rows):
    header = [
        "member", "tasklet", "items", "busy%", "p50 call", "p99.99 call",
        "max call", "overbudget", "inbox", "in-queue", "outbox", "done",
    ]
    table = [header]
    for (member, tasklet) in sorted(rows):
        row = rows[(member, tasklet)]
        busy = busy_fraction(row)
        table.append([
            member,
            tasklet,
            str(int(row.get("items_processed", 0))),
            "-" if busy is None else f"{100 * busy:.1f}",
            fmt_nanos(row.get("p50")),
            fmt_nanos(row.get("p9999")),
            fmt_nanos(row.get("max_call")),
            str(int(row.get("overbudget_calls", 0))),
            str(int(row.get("inbox_depth", 0))),
            str(int(row.get("input_queue_depth", 0))),
            str(int(row.get("outbox_depth", 0))),
            "yes" if row.get("done") else "no",
        ])
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for i, r in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(r)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_cluster_summary(metrics):
    interesting = (
        "cluster.alive_members", "imdg.partition_count", "imdg.puts", "imdg.gets",
        "imdg.replicated_bytes", "imdg.migrated_entries", "net.messages_sent",
        "net.messages_delivered", "net.messages_dropped",
        "job.snapshots_taken", "job.last_committed_snapshot",
    )
    out = []
    for m in metrics:
        if m.get("name") in interesting and "value" in m:
            tags = m.get("tags") or {}
            scope = f" (job {tags['job']})" if "job" in tags else ""
            out.append(f"  {m['name']}{scope} = {int(m['value'])}")
    return "\n".join(sorted(set(out)))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", help="dump file (default: stdin)")
    parser.add_argument("--prometheus", action="store_true",
                        help="force Prometheus text parsing (default: sniff)")
    args = parser.parse_args()

    if args.path:
        with open(args.path, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    metrics = parse_prometheus(text) if args.prometheus else load_metrics(text)
    rows = build_rows(metrics)
    if not rows:
        raise SystemExit("metrics_dump.py: no tasklet.* metrics in input")

    print(render_table(rows))
    summary = render_cluster_summary(metrics)
    if summary:
        print("\ncluster:")
        print(summary)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)
