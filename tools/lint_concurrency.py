#!/usr/bin/env python3
"""Concurrency lint for jetsim.

Flags patterns that are almost always wrong in this codebase:

  1. `volatile` — never a substitute for std::atomic; banned outright.
  2. Relaxed atomic *writes* (`.store(..., memory_order_relaxed)` or RMWs
     with relaxed order) outside the whitelisted files that are documented
     single-writer or intentionally unordered. A relaxed store that is
     supposed to publish data is the classic misordered-load bug the TSan
     suite exists to catch; new ones must be reviewed and whitelisted here.
  3. Mutex-under-spinlock: taking a `std::mutex` (scoped_lock/lock_guard/
     unique_lock) lexically inside a busy-wait loop (`while (...load(...))`
     or a loop over `compare_exchange`). Blocking inside a spin inverts the
     cooperative scheduler's latency assumptions (§3.2).

Usage:
  python3 tools/lint_concurrency.py [--strict] [paths...]

Default paths: src/. Exit code is 0 unless --strict is given and findings
exist (CI runs it non-strict initially; tools/check.sh runs it strict for
rules 1-2, while rule 3 is always advisory).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Files allowed to perform relaxed atomic writes, with the reason recorded
# here so the whitelist is reviewable.
RELAXED_WRITE_WHITELIST = {
    "src/common/spsc_queue.h": "SPSC protocol: relaxed loads of own index only",
    "src/common/debug_check.h": "debug ownership ids carry no payload ordering",
    "src/core/tasklet.cc": "single-writer metrics counters, readers tolerate staleness",
    "src/core/tasklet.h": "single-writer metrics counters, readers tolerate staleness",
    "src/core/processors_basic.h": "statistics counter, no payload published",
    "src/core/processors_window.h": "late-event counter, no payload published",
    "src/obs/metrics_registry.h": "single-writer instrument cells, pollers tolerate staleness",
    "src/obs/atomic_histogram.h": "single-writer bucket counters, pollers tolerate staleness",
}

VOLATILE_RE = re.compile(r"\bvolatile\b")
RELAXED_WRITE_RE = re.compile(
    r"\.(store|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|exchange)\s*\("
    r"[^;]*memory_order_relaxed"
)
SPIN_LOOP_RE = re.compile(
    r"\b(while|for)\s*\([^)]*(\.load\s*\(|compare_exchange|\.test\s*\()"
)
MUTEX_LOCK_RE = re.compile(
    r"\b(std::)?(scoped_lock|lock_guard|unique_lock)\b|\.lock\s*\(\s*\)"
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                out.append("\n")
                if mode == "line":
                    mode = None
                i += 1
                continue
            if mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            if mode in ("str", "chr") and c == "\\":
                out.append("  ")
                i += 2
                continue
            if (mode == "str" and c == '"') or (mode == "chr" and c == "'"):
                mode = None
            out.append(" ")
        i += 1
    return "".join(out)


def find_spin_scopes(lines: list[str]) -> list[tuple[int, int]]:
    """Returns (start, end) line index ranges of busy-wait loop bodies."""
    scopes = []
    for idx, line in enumerate(lines):
        if not SPIN_LOOP_RE.search(line):
            continue
        # Walk forward to the loop body's closing brace (brace counting
        # from the first '{' at or after the loop header).
        depth = 0
        started = False
        for j in range(idx, min(idx + 80, len(lines))):
            depth += lines[j].count("{") - lines[j].count("}")
            if "{" in lines[j]:
                started = True
            if started and depth <= 0:
                scopes.append((idx, j))
                break
    return scopes


def lint_file(path: Path, repo_root: Path) -> tuple[list[str], list[str]]:
    """Returns (errors, warnings) for one file."""
    rel = path.relative_to(repo_root).as_posix()
    text = strip_comments_and_strings(path.read_text(errors="replace"))
    lines = text.split("\n")
    errors: list[str] = []
    warnings: list[str] = []

    for idx, line in enumerate(lines, start=1):
        if VOLATILE_RE.search(line):
            errors.append(
                f"{rel}:{idx}: `volatile` is banned; use std::atomic with an "
                f"explicit memory order"
            )
        if RELAXED_WRITE_RE.search(line) and rel not in RELAXED_WRITE_WHITELIST:
            errors.append(
                f"{rel}:{idx}: relaxed atomic write outside the whitelist; "
                f"publishing seq/payload stores need release ordering "
                f"(whitelist in tools/lint_concurrency.py if single-writer)"
            )

    for start, end in find_spin_scopes(lines):
        for j in range(start + 1, end + 1):
            if MUTEX_LOCK_RE.search(lines[j]):
                warnings.append(
                    f"{rel}:{j + 1}: mutex acquisition inside a busy-wait loop "
                    f"(started line {start + 1}); blocking under a spin defeats "
                    f"the cooperative scheduler's latency model"
                )
                break
    return errors, warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when errors are found")
    parser.add_argument("paths", nargs="*", default=None)
    args = parser.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(p) for p in args.paths] if args.paths else [repo_root / "src"]

    files: list[Path] = []
    for root in roots:
        root = root if root.is_absolute() else repo_root / root
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cc")))

    all_errors: list[str] = []
    all_warnings: list[str] = []
    for f in files:
        errors, warnings = lint_file(f, repo_root)
        all_errors.extend(errors)
        all_warnings.extend(warnings)

    for msg in all_errors:
        print(f"error: {msg}")
    for msg in all_warnings:
        print(f"warning: {msg}")
    print(
        f"lint_concurrency: {len(files)} files, {len(all_errors)} errors, "
        f"{len(all_warnings)} warnings"
    )
    if args.strict and all_errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
