#include <cstdio>
#include "sim/cluster_sim.h"
using namespace jet;
using namespace jet::sim;
void Run(const char* label, SimConfig c) {
  auto r = RunClusterSim(c);
  printf("%-32s p50=%8.2f p90=%8.2f p99=%8.2f p99.9=%8.2f p99.99=%8.2fms util=%.2f sat=%d gc=%lld\n",
         label, r.latency.ValueAtQuantile(0.5)/1e6, r.latency.ValueAtQuantile(0.9)/1e6,
         r.latency.ValueAtQuantile(0.99)/1e6, r.latency.ValueAtQuantile(0.999)/1e6,
         r.latency.ValueAtQuantile(0.9999)/1e6, r.peak_utilization, (int)r.saturated,
         (long long)r.gc_pause_count);
}
int main() {
  // Fig 7: total throughput per core = input + output, split 50/50 at the
  // high end (output scaled via the key-set size).
  for (double total_pc : {0.5e6, 1.0e6, 1.25e6, 1.5e6, 1.75e6, 2.0e6}) {
    SimConfig c; c.profile = ProfileForQuery(5); c.duration = 60*kNanosPerSecond;
    double in_total = total_pc * 12 / 2;
    double out_total = total_pc * 12 - in_total;
    c.events_per_second = in_total;
    c.keys = (int64_t)(out_total / 100.0);
    char buf[64]; snprintf(buf, 64, "Fig7 %.2fM/core K=%lld", total_pc/1e6, (long long)c.keys);
    Run(buf, c);
  }
  { SimConfig c; c.profile = ProfileForQuery(1); c.duration = 60*kNanosPerSecond; Run("Fig8 Q1 1node 1M/s", c); }
  { SimConfig c; c.profile = ProfileForQuery(5); c.duration = 60*kNanosPerSecond; Run("Fig8 Q5 1node 1M/s", c); }
  { SimConfig c; c.profile = ProfileForQuery(5); c.nodes=20; c.duration = 60*kNanosPerSecond; Run("Fig8 Q5 20node 1M/s", c); }
  { SimConfig c; c.profile = ProfileForQuery(8); c.nodes=5; c.duration = 60*kNanosPerSecond; Run("Fig11 Q8 5node 1M/s", c); }
  { SimConfig c; c.profile = ProfileForQuery(5); c.duration = 30*kNanosPerSecond; c.exactly_once=true; Run("Fig13 Q5 1node EO", c); }
  { SimConfig c; c.profile = ProfileForQuery(5); c.duration = 30*kNanosPerSecond; c.concurrent_jobs=100; c.window_slide=40*kNanosPerMilli; Run("Sec77 100 jobs slide=40ms", c); }
  { SimConfig c; c.profile = ProfileForQuery(5); c.nodes=20; c.window_slide=500*kNanosPerMilli; c.events_per_second=468e6; c.duration=30*kNanosPerSecond; Run("Fig10 20n 468M/s 500ms", c); }
  return 0;
}
