file(REMOVE_RECURSE
  "CMakeFiles/nexmark_cli.dir/nexmark_cli.cpp.o"
  "CMakeFiles/nexmark_cli.dir/nexmark_cli.cpp.o.d"
  "nexmark_cli"
  "nexmark_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
