# Empty compiler generated dependencies file for nexmark_cli.
# This may be replaced when dependencies are built.
