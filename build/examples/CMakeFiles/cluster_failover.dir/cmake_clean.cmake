file(REMOVE_RECURSE
  "CMakeFiles/cluster_failover.dir/cluster_failover.cpp.o"
  "CMakeFiles/cluster_failover.dir/cluster_failover.cpp.o.d"
  "cluster_failover"
  "cluster_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
