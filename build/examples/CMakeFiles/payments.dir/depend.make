# Empty dependencies file for payments.
# This may be replaced when dependencies are built.
