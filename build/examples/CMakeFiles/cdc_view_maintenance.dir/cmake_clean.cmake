file(REMOVE_RECURSE
  "CMakeFiles/cdc_view_maintenance.dir/cdc_view_maintenance.cpp.o"
  "CMakeFiles/cdc_view_maintenance.dir/cdc_view_maintenance.cpp.o.d"
  "cdc_view_maintenance"
  "cdc_view_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdc_view_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
