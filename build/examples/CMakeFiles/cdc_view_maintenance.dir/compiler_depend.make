# Empty compiler generated dependencies file for cdc_view_maintenance.
# This may be replaced when dependencies are built.
