file(REMOVE_RECURSE
  "libjet_core.a"
)
