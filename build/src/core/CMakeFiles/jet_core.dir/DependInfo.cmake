
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dag.cc" "src/core/CMakeFiles/jet_core.dir/dag.cc.o" "gcc" "src/core/CMakeFiles/jet_core.dir/dag.cc.o.d"
  "/root/repo/src/core/execution_plan.cc" "src/core/CMakeFiles/jet_core.dir/execution_plan.cc.o" "gcc" "src/core/CMakeFiles/jet_core.dir/execution_plan.cc.o.d"
  "/root/repo/src/core/execution_service.cc" "src/core/CMakeFiles/jet_core.dir/execution_service.cc.o" "gcc" "src/core/CMakeFiles/jet_core.dir/execution_service.cc.o.d"
  "/root/repo/src/core/job.cc" "src/core/CMakeFiles/jet_core.dir/job.cc.o" "gcc" "src/core/CMakeFiles/jet_core.dir/job.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/jet_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/jet_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/tasklet.cc" "src/core/CMakeFiles/jet_core.dir/tasklet.cc.o" "gcc" "src/core/CMakeFiles/jet_core.dir/tasklet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/imdg/CMakeFiles/jet_imdg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
