# Empty dependencies file for jet_core.
# This may be replaced when dependencies are built.
