file(REMOVE_RECURSE
  "CMakeFiles/jet_core.dir/dag.cc.o"
  "CMakeFiles/jet_core.dir/dag.cc.o.d"
  "CMakeFiles/jet_core.dir/execution_plan.cc.o"
  "CMakeFiles/jet_core.dir/execution_plan.cc.o.d"
  "CMakeFiles/jet_core.dir/execution_service.cc.o"
  "CMakeFiles/jet_core.dir/execution_service.cc.o.d"
  "CMakeFiles/jet_core.dir/job.cc.o"
  "CMakeFiles/jet_core.dir/job.cc.o.d"
  "CMakeFiles/jet_core.dir/metrics.cc.o"
  "CMakeFiles/jet_core.dir/metrics.cc.o.d"
  "CMakeFiles/jet_core.dir/tasklet.cc.o"
  "CMakeFiles/jet_core.dir/tasklet.cc.o.d"
  "libjet_core.a"
  "libjet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
