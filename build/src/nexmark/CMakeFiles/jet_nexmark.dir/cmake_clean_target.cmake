file(REMOVE_RECURSE
  "libjet_nexmark.a"
)
