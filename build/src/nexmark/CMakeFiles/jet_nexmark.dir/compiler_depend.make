# Empty compiler generated dependencies file for jet_nexmark.
# This may be replaced when dependencies are built.
