file(REMOVE_RECURSE
  "CMakeFiles/jet_nexmark.dir/queries.cc.o"
  "CMakeFiles/jet_nexmark.dir/queries.cc.o.d"
  "libjet_nexmark.a"
  "libjet_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
