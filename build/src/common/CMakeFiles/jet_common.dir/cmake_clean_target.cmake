file(REMOVE_RECURSE
  "libjet_common.a"
)
