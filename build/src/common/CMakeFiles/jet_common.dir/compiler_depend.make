# Empty compiler generated dependencies file for jet_common.
# This may be replaced when dependencies are built.
