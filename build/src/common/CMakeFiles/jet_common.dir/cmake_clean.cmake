file(REMOVE_RECURSE
  "CMakeFiles/jet_common.dir/clock.cc.o"
  "CMakeFiles/jet_common.dir/clock.cc.o.d"
  "CMakeFiles/jet_common.dir/histogram.cc.o"
  "CMakeFiles/jet_common.dir/histogram.cc.o.d"
  "CMakeFiles/jet_common.dir/status.cc.o"
  "CMakeFiles/jet_common.dir/status.cc.o.d"
  "libjet_common.a"
  "libjet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
