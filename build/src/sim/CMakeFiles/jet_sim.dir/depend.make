# Empty dependencies file for jet_sim.
# This may be replaced when dependencies are built.
