file(REMOVE_RECURSE
  "libjet_sim.a"
)
