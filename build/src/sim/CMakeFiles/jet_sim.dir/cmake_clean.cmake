file(REMOVE_RECURSE
  "CMakeFiles/jet_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/jet_sim.dir/cluster_sim.cc.o.d"
  "libjet_sim.a"
  "libjet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
