file(REMOVE_RECURSE
  "CMakeFiles/jet_cluster.dir/jet_cluster.cc.o"
  "CMakeFiles/jet_cluster.dir/jet_cluster.cc.o.d"
  "libjet_cluster.a"
  "libjet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
