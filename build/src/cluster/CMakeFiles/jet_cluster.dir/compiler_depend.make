# Empty compiler generated dependencies file for jet_cluster.
# This may be replaced when dependencies are built.
