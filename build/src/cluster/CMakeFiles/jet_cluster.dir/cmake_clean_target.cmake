file(REMOVE_RECURSE
  "libjet_cluster.a"
)
