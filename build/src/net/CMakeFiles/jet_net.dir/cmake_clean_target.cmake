file(REMOVE_RECURSE
  "libjet_net.a"
)
