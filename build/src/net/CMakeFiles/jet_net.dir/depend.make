# Empty dependencies file for jet_net.
# This may be replaced when dependencies are built.
