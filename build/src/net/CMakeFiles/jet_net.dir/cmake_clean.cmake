file(REMOVE_RECURSE
  "CMakeFiles/jet_net.dir/exchange.cc.o"
  "CMakeFiles/jet_net.dir/exchange.cc.o.d"
  "CMakeFiles/jet_net.dir/network.cc.o"
  "CMakeFiles/jet_net.dir/network.cc.o.d"
  "libjet_net.a"
  "libjet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
