file(REMOVE_RECURSE
  "libjet_imdg.a"
)
