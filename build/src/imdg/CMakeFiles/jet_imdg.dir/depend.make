# Empty dependencies file for jet_imdg.
# This may be replaced when dependencies are built.
