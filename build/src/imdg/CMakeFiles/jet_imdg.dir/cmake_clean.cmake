file(REMOVE_RECURSE
  "CMakeFiles/jet_imdg.dir/grid.cc.o"
  "CMakeFiles/jet_imdg.dir/grid.cc.o.d"
  "CMakeFiles/jet_imdg.dir/partition_table.cc.o"
  "CMakeFiles/jet_imdg.dir/partition_table.cc.o.d"
  "CMakeFiles/jet_imdg.dir/snapshot_store.cc.o"
  "CMakeFiles/jet_imdg.dir/snapshot_store.cc.o.d"
  "libjet_imdg.a"
  "libjet_imdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_imdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
