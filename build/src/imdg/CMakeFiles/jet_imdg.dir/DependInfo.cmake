
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imdg/grid.cc" "src/imdg/CMakeFiles/jet_imdg.dir/grid.cc.o" "gcc" "src/imdg/CMakeFiles/jet_imdg.dir/grid.cc.o.d"
  "/root/repo/src/imdg/partition_table.cc" "src/imdg/CMakeFiles/jet_imdg.dir/partition_table.cc.o" "gcc" "src/imdg/CMakeFiles/jet_imdg.dir/partition_table.cc.o.d"
  "/root/repo/src/imdg/snapshot_store.cc" "src/imdg/CMakeFiles/jet_imdg.dir/snapshot_store.cc.o" "gcc" "src/imdg/CMakeFiles/jet_imdg.dir/snapshot_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
