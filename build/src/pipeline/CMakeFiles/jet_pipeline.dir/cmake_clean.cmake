file(REMOVE_RECURSE
  "CMakeFiles/jet_pipeline.dir/planner.cc.o"
  "CMakeFiles/jet_pipeline.dir/planner.cc.o.d"
  "libjet_pipeline.a"
  "libjet_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jet_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
