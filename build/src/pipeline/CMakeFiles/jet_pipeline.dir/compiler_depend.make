# Empty compiler generated dependencies file for jet_pipeline.
# This may be replaced when dependencies are built.
