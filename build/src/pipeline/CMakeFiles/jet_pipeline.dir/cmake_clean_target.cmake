file(REMOVE_RECURSE
  "libjet_pipeline.a"
)
