file(REMOVE_RECURSE
  "CMakeFiles/imdg_test.dir/imdg_test.cc.o"
  "CMakeFiles/imdg_test.dir/imdg_test.cc.o.d"
  "imdg_test"
  "imdg_test.pdb"
  "imdg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
