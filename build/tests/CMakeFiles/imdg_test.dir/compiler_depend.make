# Empty compiler generated dependencies file for imdg_test.
# This may be replaced when dependencies are built.
