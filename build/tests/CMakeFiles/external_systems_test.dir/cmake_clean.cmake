file(REMOVE_RECURSE
  "CMakeFiles/external_systems_test.dir/external_systems_test.cc.o"
  "CMakeFiles/external_systems_test.dir/external_systems_test.cc.o.d"
  "external_systems_test"
  "external_systems_test.pdb"
  "external_systems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
