# Empty compiler generated dependencies file for external_systems_test.
# This may be replaced when dependencies are built.
