file(REMOVE_RECURSE
  "CMakeFiles/session_window_test.dir/session_window_test.cc.o"
  "CMakeFiles/session_window_test.dir/session_window_test.cc.o.d"
  "session_window_test"
  "session_window_test.pdb"
  "session_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
