file(REMOVE_RECURSE
  "CMakeFiles/execution_service_test.dir/execution_service_test.cc.o"
  "CMakeFiles/execution_service_test.dir/execution_service_test.cc.o.d"
  "execution_service_test"
  "execution_service_test.pdb"
  "execution_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
