# Empty compiler generated dependencies file for execution_service_test.
# This may be replaced when dependencies are built.
