# Empty compiler generated dependencies file for imdg_observable_test.
# This may be replaced when dependencies are built.
