file(REMOVE_RECURSE
  "CMakeFiles/imdg_observable_test.dir/imdg_observable_test.cc.o"
  "CMakeFiles/imdg_observable_test.dir/imdg_observable_test.cc.o.d"
  "imdg_observable_test"
  "imdg_observable_test.pdb"
  "imdg_observable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imdg_observable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
