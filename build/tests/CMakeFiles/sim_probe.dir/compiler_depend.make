# Empty compiler generated dependencies file for sim_probe.
# This may be replaced when dependencies are built.
