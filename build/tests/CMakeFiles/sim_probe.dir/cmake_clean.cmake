file(REMOVE_RECURSE
  "CMakeFiles/sim_probe.dir/__/tools/sim_probe.cc.o"
  "CMakeFiles/sim_probe.dir/__/tools/sim_probe.cc.o.d"
  "sim_probe"
  "sim_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
