# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_basic_test[1]_include.cmake")
include("/root/repo/build/tests/core_window_test[1]_include.cmake")
include("/root/repo/build/tests/core_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/nexmark_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/imdg_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/external_systems_test[1]_include.cmake")
include("/root/repo/build/tests/core_features_test[1]_include.cmake")
include("/root/repo/build/tests/core_routing_test[1]_include.cmake")
include("/root/repo/build/tests/detector_test[1]_include.cmake")
include("/root/repo/build/tests/imdg_observable_test[1]_include.cmake")
include("/root/repo/build/tests/session_window_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/item_test[1]_include.cmake")
include("/root/repo/build/tests/execution_service_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
