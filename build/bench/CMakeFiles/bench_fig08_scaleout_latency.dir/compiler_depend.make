# Empty compiler generated dependencies file for bench_fig08_scaleout_latency.
# This may be replaced when dependencies are built.
