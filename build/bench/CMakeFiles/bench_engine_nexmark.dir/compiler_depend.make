# Empty compiler generated dependencies file for bench_engine_nexmark.
# This may be replaced when dependencies are built.
