file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_nexmark.dir/bench_engine_nexmark.cc.o"
  "CMakeFiles/bench_engine_nexmark.dir/bench_engine_nexmark.cc.o.d"
  "bench_engine_nexmark"
  "bench_engine_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
