file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_latency_10node.dir/bench_fig12_latency_10node.cc.o"
  "CMakeFiles/bench_fig12_latency_10node.dir/bench_fig12_latency_10node.cc.o.d"
  "bench_fig12_latency_10node"
  "bench_fig12_latency_10node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_latency_10node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
