# Empty compiler generated dependencies file for bench_fig12_latency_10node.
# This may be replaced when dependencies are built.
