# Empty dependencies file for bench_fig07_throughput_vs_latency.
# This may be replaced when dependencies are built.
