# Empty dependencies file for bench_fig10_throughput_scaling.
# This may be replaced when dependencies are built.
