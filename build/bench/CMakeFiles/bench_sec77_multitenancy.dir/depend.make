# Empty dependencies file for bench_sec77_multitenancy.
# This may be replaced when dependencies are built.
