file(REMOVE_RECURSE
  "CMakeFiles/bench_sec77_multitenancy.dir/bench_sec77_multitenancy.cc.o"
  "CMakeFiles/bench_sec77_multitenancy.dir/bench_sec77_multitenancy.cc.o.d"
  "bench_sec77_multitenancy"
  "bench_sec77_multitenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec77_multitenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
