file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_latency_5node.dir/bench_fig11_latency_5node.cc.o"
  "CMakeFiles/bench_fig11_latency_5node.dir/bench_fig11_latency_5node.cc.o.d"
  "bench_fig11_latency_5node"
  "bench_fig11_latency_5node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_latency_5node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
