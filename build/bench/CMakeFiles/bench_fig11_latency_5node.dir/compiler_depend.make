# Empty compiler generated dependencies file for bench_fig11_latency_5node.
# This may be replaced when dependencies are built.
