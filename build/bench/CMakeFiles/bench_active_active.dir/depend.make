# Empty dependencies file for bench_active_active.
# This may be replaced when dependencies are built.
